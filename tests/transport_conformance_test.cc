// Transport conformance suite: the contract in net/transport.h, machine
// checked against BOTH implementations via a typed fixture.  Anything the
// engines rely on (per-link FIFO, fail-stop drop accounting, payload-pool
// recycling, byte accounting, RPC round trips) must hold identically for
// the simulated fabric and for real TCP sockets.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "net/endpoint.h"
#include "net/fabric.h"
#include "net/tcp_transport.h"
#include "net/transport.h"

namespace star::net {
namespace {

/// Factory policies for the typed suite.  Both build a transport with all
/// endpoints local to this process; the sim gets a near-zero latency model
/// so delivery-timing assertions stay cheap.
struct SimFactory {
  static std::unique_ptr<Transport> Make(int endpoints) {
    TransportConfig c;
    c.kind = TransportKind::kSim;
    c.sim.link_latency_us = 1;
    c.sim.bandwidth_gbps = 0;  // unlimited
    return MakeTransport(endpoints, c);
  }
};

struct TcpFactory {
  static std::unique_ptr<Transport> Make(int endpoints) {
    TransportConfig c;
    c.kind = TransportKind::kTcp;
    c.tcp.base_port = 0;  // ephemeral ports: all endpoints are local
    return MakeTransport(endpoints, c);
  }
};

/// FaultTransport in pass-through configuration (enabled, no episodes) over
/// TCP: the decorator must preserve the full contract verbatim.
struct FaultPassFactory {
  static std::unique_ptr<Transport> Make(int endpoints) {
    TransportConfig c;
    c.kind = TransportKind::kTcp;
    c.tcp.base_port = 0;
    c.fault.enabled = true;
    c.fault.seed = 7;
    return MakeTransport(endpoints, c);
  }
};

/// FaultTransport with an active delay/jitter schedule on every link over
/// the sim: the contract (FIFO, fail-stop, accounting, RPC) must hold while
/// faults are firing, not just when the wrapper is idle.
struct FaultDelayFactory {
  static std::unique_ptr<Transport> Make(int endpoints) {
    TransportConfig c;
    c.kind = TransportKind::kSim;
    c.sim.link_latency_us = 1;
    c.sim.bandwidth_gbps = 0;
    c.fault.enabled = true;
    c.fault.seed = 7;
    for (int s = 0; s < endpoints; ++s) {
      for (int d = 0; d < endpoints; ++d) {
        FaultEpisode e;
        e.src = s;
        e.dst = d;
        e.start_ms = 0.0;
        e.end_ms = 1e9;  // the whole test
        e.kind = FaultEpisode::Kind::kDelay;
        e.delay_min_us = 50;
        e.delay_max_us = 400;
        c.fault.episodes.push_back(e);
      }
    }
    return MakeTransport(endpoints, c);
  }
};

template <typename Factory>
class TransportConformance : public ::testing::Test {
 protected:
  void SetUp() override {
    t_ = Factory::Make(4);
    ASSERT_TRUE(t_->Start());
  }
  void TearDown() override { t_->Stop(); }

  static Message Make(int src, int dst, std::string payload,
                      MsgType type = MsgType::kPing) {
    Message m;
    m.src = src;
    m.dst = dst;
    m.type = type;
    m.payload = std::move(payload);
    return m;
  }

  /// Polls until a message for `dst` arrives or `ms` elapses.
  bool PollFor(int dst, Message* out, int ms = 2000) {
    uint64_t deadline = NowNanos() + MillisToNanos(ms);
    while (NowNanos() < deadline) {
      if (t_->Poll(dst, out)) return true;
      std::this_thread::yield();
    }
    return false;
  }

  std::unique_ptr<Transport> t_;
};

using Impls =
    ::testing::Types<SimFactory, TcpFactory, FaultPassFactory,
                     FaultDelayFactory>;

class ImplNames {
 public:
  template <typename T>
  static std::string GetName(int) {
    if (std::is_same<T, SimFactory>::value) return "Sim";
    if (std::is_same<T, FaultPassFactory>::value) return "FaultPassTcp";
    if (std::is_same<T, FaultDelayFactory>::value) return "FaultDelaySim";
    return "Tcp";
  }
};

TYPED_TEST_SUITE(TransportConformance, Impls, ImplNames);

TYPED_TEST(TransportConformance, DeliversPayloadIntact) {
  std::string payload(4096, 'x');
  for (size_t i = 0; i < payload.size(); ++i) payload[i] = char('a' + i % 26);
  ASSERT_TRUE(this->t_->Send(this->Make(0, 1, payload)));
  Message out;
  ASSERT_TRUE(this->PollFor(1, &out));
  EXPECT_EQ(out.src, 0);
  EXPECT_EQ(out.dst, 1);
  EXPECT_EQ(out.type, MsgType::kPing);
  EXPECT_EQ(out.payload, payload);
}

TYPED_TEST(TransportConformance, FifoPerSrcDstPair) {
  // Two sources interleave onto one destination; each source's sequence
  // must come out in order (the operation-replication prerequisite).
  constexpr int kN = 200;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(this->t_->Send(this->Make(0, 1, "a" + std::to_string(i))));
    ASSERT_TRUE(this->t_->Send(this->Make(2, 1, "b" + std::to_string(i))));
  }
  int next_a = 0, next_b = 0;
  Message out;
  for (int i = 0; i < 2 * kN; ++i) {
    ASSERT_TRUE(this->PollFor(1, &out)) << "message " << i << " missing";
    if (out.src == 0) {
      EXPECT_EQ(out.payload, "a" + std::to_string(next_a++)) << "src 0 FIFO";
    } else {
      ASSERT_EQ(out.src, 2);
      EXPECT_EQ(out.payload, "b" + std::to_string(next_b++)) << "src 2 FIFO";
    }
  }
  EXPECT_EQ(next_a, kN);
  EXPECT_EQ(next_b, kN);
}

TYPED_TEST(TransportConformance, SendToDownEndpointDropsAndCounts) {
  this->t_->SetDown(1, true);
  uint64_t msgs0 = this->t_->dropped_messages();
  uint64_t bytes0 = this->t_->dropped_bytes();
  EXPECT_FALSE(this->t_->Send(this->Make(0, 1, std::string(100, 'x'))));
  EXPECT_EQ(this->t_->dropped_messages(), msgs0 + 1);
  EXPECT_GE(this->t_->dropped_bytes(), bytes0 + 100)
      << "dropped bytes must include the payload";
  // No resurrection: bringing the endpoint back does not revive the drop.
  this->t_->SetDown(1, false);
  Message out;
  EXPECT_FALSE(this->PollFor(1, &out, 150));
}

TYPED_TEST(TransportConformance, SendFromDownEndpointDrops) {
  this->t_->SetDown(0, true);
  uint64_t msgs0 = this->t_->dropped_messages();
  EXPECT_FALSE(this->t_->Send(this->Make(0, 1, "x")));
  EXPECT_EQ(this->t_->dropped_messages(), msgs0 + 1);
}

TYPED_TEST(TransportConformance, PollOnDownEndpointReturnsFalse) {
  ASSERT_TRUE(this->t_->Send(this->Make(0, 1, "queued")));
  this->t_->SetDown(1, true);
  Message out;
  EXPECT_FALSE(this->PollFor(1, &out, 100))
      << "a down endpoint receives nothing";
}

TYPED_TEST(TransportConformance, DropsAreNotCountedAsTraffic) {
  uint64_t sent0 = this->t_->total_messages();
  this->t_->SetDown(1, true);
  (void)this->t_->Send(this->Make(0, 1, "x"));
  EXPECT_EQ(this->t_->total_messages(), sent0)
      << "dropped messages must not inflate the sent counters";
}

TYPED_TEST(TransportConformance, ByteAndMessageAccounting) {
  this->t_->ResetStats();
  constexpr int kN = 10;
  constexpr size_t kPayload = 1000;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(this->t_->Send(this->Make(0, 1, std::string(kPayload, 'x'))));
  }
  Message out;
  for (int i = 0; i < kN; ++i) ASSERT_TRUE(this->PollFor(1, &out));
  EXPECT_EQ(this->t_->total_messages(), uint64_t{kN});
  EXPECT_GT(this->t_->total_bytes(), uint64_t{kN} * kPayload)
      << "framing overhead must be accounted";
  EXPECT_EQ(this->t_->dropped_messages(), 0u);
  this->t_->ResetStats();
  EXPECT_EQ(this->t_->total_messages(), 0u);
  EXPECT_EQ(this->t_->total_bytes(), 0u);
}

TYPED_TEST(TransportConformance, PayloadPoolRoundTrip) {
  // Warm the loop: deliver + release a batch-sized buffer, then verify the
  // pool hands recycled capacity back (the zero-allocation send path).
  std::string big(8192, 'r');
  ASSERT_TRUE(this->t_->Send(this->Make(0, 1, big)));
  Message out;
  ASSERT_TRUE(this->PollFor(1, &out));
  ASSERT_EQ(out.payload.size(), big.size());
  this->t_->payload_pool().Release(1, std::move(out.payload));
  std::string recycled = this->t_->payload_pool().Acquire(1);
  EXPECT_GE(recycled.capacity(), big.size())
      << "released capacity must recirculate";
  EXPECT_TRUE(recycled.empty());
}

TYPED_TEST(TransportConformance, HasTrafficReflectsQueue) {
  ASSERT_TRUE(this->t_->Send(this->Make(0, 1, "x")));
  // Delivery may be asynchronous (latency model / socket): wait for it.
  uint64_t deadline = NowNanos() + MillisToNanos(2000);
  while (!this->t_->HasTraffic(1) && NowNanos() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_TRUE(this->t_->HasTraffic(1));
  Message out;
  ASSERT_TRUE(this->PollFor(1, &out));
  EXPECT_FALSE(this->t_->HasTraffic(1));
}

TYPED_TEST(TransportConformance, EndpointRpcRoundTrip) {
  Endpoint server(this->t_.get(), 0), client(this->t_.get(), 1);
  server.RegisterHandler(MsgType::kPing, [&](Message&& m) {
    server.Respond(m, MsgType::kPong, "pong:" + m.payload);
  });
  server.Start();
  client.Start();
  std::string resp;
  ASSERT_TRUE(client.Call(0, MsgType::kPing, "42", &resp,
                          MillisToNanos(5000)));
  EXPECT_EQ(resp, "pong:42");
  client.Stop();
  server.Stop();
}

TYPED_TEST(TransportConformance, ConcurrentSendersKeepPerPairFifo) {
  // Each of three sources blasts its own ordered stream from its own
  // thread; per-(src,dst) order must survive the concurrency.
  constexpr int kN = 500;
  std::vector<std::thread> senders;
  for (int src : {0, 2, 3}) {
    senders.emplace_back([this, src] {
      for (int i = 0; i < kN; ++i) {
        while (!this->t_->Send(this->Make(src, 1, std::to_string(i)))) {
          std::this_thread::yield();
        }
      }
    });
  }
  std::vector<int> next(4, 0);
  Message out;
  for (int i = 0; i < 3 * kN; ++i) {
    ASSERT_TRUE(this->PollFor(1, &out, 10000)) << "message " << i;
    EXPECT_EQ(out.payload, std::to_string(next[out.src]++))
        << "FIFO violated for src " << out.src;
  }
  for (auto& t : senders) t.join();
}

}  // namespace
}  // namespace star::net
