#ifndef STAR_TESTS_CHAOS_UTIL_H_
#define STAR_TESTS_CHAOS_UTIL_H_

// Chaos harness DSL (tests/chaos_test.cc): seeded random fault-schedule
// generation for net::FaultTransport, an acked-commit oracle workload, and
// the invariant checkers (convergence, epoch/durable-epoch monotonicity,
// post-fault liveness, no acked-commit loss).  Everything is deterministic
// in the episode seed so a failing run reproduces from the one number the
// harness prints.
//
// Fault model exercised here (gray failures, not clean crashes):
//   * delay/jitter  — every message on a directed link gets extra latency
//   * loss          — messages are "lost" and retransmitted after a penalty
//                     (TCP semantics: delayed, never silently dropped)
//   * partition     — a directed link black-holes until the window ends
//   * flap          — a short bidirectional partition (link bounce)
//
// Schedules are generated so that no node can be written off: partitions
// and flaps are kept shorter than fence_miss_threshold consecutive fence
// timeouts, and the protected node (the full replica hosting the oracle)
// never has its coordinator links partitioned.  Actual write-off/rejoin
// behaviour is covered by failure_test and the multiprocess rejoin tests;
// chaos asserts that *gray* faults are survived without any state change.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "core/engine.h"
#include "driver/cluster_driver.h"
#include "storage/checksum.h"
#include "workload/ycsb.h"

namespace star::chaos {

// ---------------------------------------------------------------------------
// Schedule generation
// ---------------------------------------------------------------------------

/// Bounds for one generated schedule.  Durations are capped so that a
/// coordinator with fence_miss_threshold >= 3 and fence_timeout_ms >=
/// max_partition_ms can never accumulate enough consecutive misses to write
/// a node off: every injected outage is gray, not fatal.
struct ScheduleShape {
  int endpoints = 0;        // nodes + 1; the coordinator is endpoints - 1
  int protect_node = 0;     // its coordinator links get delay episodes only
  double window_start_ms = 300;
  double window_end_ms = 1500;
  int episodes = 8;
  double max_partition_ms = 450;
  double max_flap_ms = 160;
};

inline std::vector<net::FaultEpisode> GenerateSchedule(
    uint64_t seed, const ScheduleShape& shape) {
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 0xC4A05ull);
  const int coord = shape.endpoints - 1;
  std::vector<net::FaultEpisode> out;
  for (int i = 0; i < shape.episodes; ++i) {
    int src = static_cast<int>(rng.Next() % shape.endpoints);
    int dst = static_cast<int>(rng.Next() % shape.endpoints);
    if (src == dst) dst = (dst + 1) % shape.endpoints;
    int kind = static_cast<int>(rng.Next() % 4);  // delay/drop/partition/flap
    // The protected node's coordinator links carry fence traffic the
    // liveness oracle depends on; only jitter them.  (Partitioning them is
    // write-off territory — failure_test's job, not chaos's.)
    bool protected_link =
        (src == shape.protect_node && dst == coord) ||
        (src == coord && dst == shape.protect_node);
    if (protected_link && kind != 0) kind = 0;

    net::FaultEpisode e;
    e.src = src;
    e.dst = dst;
    double span = shape.window_end_ms - shape.window_start_ms;
    switch (kind) {
      case 0: {  // delay/jitter
        double dur = 200 + rng.NextDouble() * 600;
        e.start_ms = shape.window_start_ms + rng.NextDouble() * (span - dur);
        e.end_ms = e.start_ms + dur;
        e.kind = net::FaultEpisode::Kind::kDelay;
        e.delay_min_us = 100 + rng.NextDouble() * 400;
        e.delay_max_us = e.delay_min_us + 200 + rng.NextDouble() * 2000;
        out.push_back(e);
        break;
      }
      case 1: {  // loss with retransmission penalty
        double dur = 200 + rng.NextDouble() * 400;
        e.start_ms = shape.window_start_ms + rng.NextDouble() * (span - dur);
        e.end_ms = e.start_ms + dur;
        e.kind = net::FaultEpisode::Kind::kDrop;
        e.drop_p = 0.05 + rng.NextDouble() * 0.3;
        e.penalty_ms = 20 + rng.NextDouble() * 40;
        out.push_back(e);
        break;
      }
      case 2: {  // asymmetric partition (one direction only)
        double dur = 150 + rng.NextDouble() * (shape.max_partition_ms - 150);
        e.start_ms = shape.window_start_ms + rng.NextDouble() * (span - dur);
        e.end_ms = e.start_ms + dur;
        e.kind = net::FaultEpisode::Kind::kPartition;
        out.push_back(e);
        break;
      }
      default: {  // flap: short partition in both directions
        double dur = 60 + rng.NextDouble() * (shape.max_flap_ms - 60);
        e.start_ms = shape.window_start_ms + rng.NextDouble() * (span - dur);
        e.end_ms = e.start_ms + dur;
        e.kind = net::FaultEpisode::Kind::kPartition;
        out.push_back(e);
        net::FaultEpisode back = e;
        back.src = e.dst;
        back.dst = e.src;
        out.push_back(back);
        break;
      }
    }
  }
  return out;
}

/// Dumps a schedule in replayable form.  Printed for every failing seed so
/// the exact fault sequence is in the test log.
inline void PrintSchedule(uint64_t seed,
                          const std::vector<net::FaultEpisode>& eps,
                          FILE* out) {
  std::fprintf(out, "[chaos] seed=%llu schedule (%zu episodes):\n",
               static_cast<unsigned long long>(seed), eps.size());
  for (const auto& e : eps) {
    std::fprintf(out,
                 "[chaos]   %-9s %d->%d  [%7.1f, %7.1f) ms"
                 "  delay=[%.0f,%.0f]us drop_p=%.2f penalty=%.0fms%s\n",
                 net::FaultKindName(e.kind), e.src, e.dst, e.start_ms,
                 e.end_ms, e.delay_min_us, e.delay_max_us, e.drop_p,
                 e.penalty_ms, e.loss ? " loss" : "");
  }
  std::fflush(out);
}

// ---------------------------------------------------------------------------
// Oracle workload: YCSB plus a dedicated table only the oracle writes
// ---------------------------------------------------------------------------

/// YCSB with an extra `chaos_oracle` table holding a few counter rows per
/// partition.  Synthetic load (MakeSinglePartition/MakeCrossPartition) is
/// pure YCSB and never touches table kOracleTable, so the oracle's serial
/// per-key value sequence is interference-free while the engine is under
/// full synthetic write pressure.
class ChaosWorkload final : public Workload {
 public:
  static constexpr int kOracleTable = 1;
  static constexpr uint64_t kOracleKeysPerPartition = 8;
  struct OracleRow {
    uint64_t value;
    uint64_t stamp;  // value-derived; makes torn writes visible in checksums
  };

  explicit ChaosWorkload(YcsbOptions o) : inner_(o) {}

  std::string name() const override { return "chaos-ycsb"; }

  std::vector<TableSchema> Schemas() const override {
    std::vector<TableSchema> s = inner_.Schemas();
    TableSchema t;
    t.name = "chaos_oracle";
    t.value_size = sizeof(OracleRow);
    t.expected_rows_per_partition = kOracleKeysPerPartition * 2;
    s.push_back(t);
    return s;
  }

  void PopulatePartition(Database& db, int partition) const override {
    inner_.PopulatePartition(db, partition);
    OracleRow r{0, 0};
    for (uint64_t k = 0; k < kOracleKeysPerPartition; ++k) {
      db.Load(kOracleTable, partition, k, &r);
    }
  }

  TxnRequest MakeSinglePartition(Rng& rng, int partition,
                                 int num_partitions) const override {
    return inner_.MakeSinglePartition(rng, partition, num_partitions);
  }
  TxnRequest MakeCrossPartition(Rng& rng, int home_partition,
                                int num_partitions) const override {
    return inner_.MakeCrossPartition(rng, home_partition, num_partitions);
  }
  TxnRequest MakeReadOnly(Rng& rng, int partition,
                          int num_partitions) const override {
    return inner_.MakeReadOnly(rng, partition, num_partitions);
  }

 private:
  YcsbWorkload inner_;
};

// ---------------------------------------------------------------------------
// Acked-commit oracle
// ---------------------------------------------------------------------------

/// Client-side commit oracle: a single thread submits strictly serial
/// counter writes to the chaos_oracle table (one in flight at a time,
/// values per key strictly increasing) and records a value as *acked* only
/// when the engine's `done` callback reports kCommitted — which the engine
/// fires at group-commit release, i.e. after the epoch's replication fence
/// succeeded.  After shutdown, Verify() re-reads the table: every acked
/// value must be covered.  An acked-then-lost value is the one unforgivable
/// outcome under faults.
class ChaosOracle {
 public:
  ChaosOracle(StarEngine* engine, int num_partitions, uint64_t seed)
      : engine_(engine), rng_(seed ^ 0x0DEC0DEull) {
    for (int p = 0; p < num_partitions; ++p) {
      for (uint64_t k = 0; k < 2; ++k) keys_.push_back(KeyState{p, k, 0});
    }
  }

  /// Serial submit loop; runs until `stop`, then drains the in-flight
  /// request (briefly) and returns.  `fault_end_ns` classifies acks that
  /// prove post-fault liveness.
  void Run(const std::atomic<bool>& stop, uint64_t fault_end_ns) {
    while (!stop.load(std::memory_order_acquire)) {
      KeyState& k = keys_[rng_.Next() % keys_.size()];
      uint64_t v = k.acked + 1;
      Pending* p = Submit(k, v);
      if (p == nullptr) {  // backpressure or not accepting: brief pause
        ++submit_failures_;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        continue;
      }
      int outcome = Await(*p, stop);
      if (outcome < 0) {  // abandoned: in flight at stop, or wedged
        if (!stop.load(std::memory_order_acquire)) stuck_ = true;
        return;  // p intentionally leaked: the engine may still complete it
      }
      TxnStatus st = static_cast<TxnStatus>(p->status.load(
          std::memory_order_acquire));
      uint64_t epoch = p->epoch.load(std::memory_order_acquire);
      delete p;
      if (st == TxnStatus::kCommitted) {
        k.acked = v;
        ++acked_;
        if (NowNanos() > fault_end_ns) ++acked_after_fault_;
        if (epoch < last_ack_epoch_) epoch_regressed_ = true;
        last_ack_epoch_ = epoch;
      } else {
        ++aborted_;  // retried with the same value on the next visit
      }
    }
  }

  /// Post-shutdown check against the full replica's database.  Returns true
  /// iff no acked value was lost.
  bool Verify(Database* db, std::string* diag) const {
    bool ok = true;
    for (const auto& k : keys_) {
      if (k.acked == 0) continue;
      HashTable* ht = db->table(ChaosWorkload::kOracleTable, k.partition);
      ChaosWorkload::OracleRow row{0, 0};
      bool present = false;
      if (ht != nullptr) {
        HashTable::Row r = ht->GetRow(k.key);
        if (r.valid()) {
          r.ReadStable(&row);
          present = true;
        }
      }
      if (!present || row.value < k.acked) {
        ok = false;
        if (diag != nullptr) {
          *diag += "acked commit lost: partition " +
                   std::to_string(k.partition) + " key " +
                   std::to_string(k.key) + " acked=" +
                   std::to_string(k.acked) + " stored=" +
                   (present ? std::to_string(row.value) : "<absent>") + "\n";
        }
      }
    }
    return ok;
  }

  uint64_t acked() const { return acked_; }
  uint64_t acked_after_fault() const { return acked_after_fault_; }
  uint64_t aborted() const { return aborted_; }
  bool stuck() const { return stuck_; }
  bool epoch_regressed() const { return epoch_regressed_; }

 private:
  struct KeyState {
    int partition;
    uint64_t key;
    uint64_t acked;
  };
  /// Completion slot; heap-allocated per attempt so an abandoned in-flight
  /// request stays valid for the engine's eventual `done` call.
  struct Pending {
    StarEngine::ExternalTxn txn;
    std::atomic<int> state{0};
    std::atomic<int> status{0};
    std::atomic<uint64_t> epoch{0};
  };

  static void Done(StarEngine::ExternalTxn* t, TxnStatus status,
                   uint64_t epoch) {
    auto* p = reinterpret_cast<Pending*>(t->owner);
    p->status.store(static_cast<int>(status), std::memory_order_release);
    p->epoch.store(epoch, std::memory_order_release);
    p->state.store(1, std::memory_order_release);
  }

  Pending* Submit(const KeyState& k, uint64_t v) {
    auto* p = new Pending();
    p->txn.req.home_partition = k.partition;
    p->txn.req.cross_partition = false;
    p->txn.req.read_only = false;
    AccessDesc a;
    a.table = ChaosWorkload::kOracleTable;
    a.partition = k.partition;
    a.key = k.key;
    a.write = true;
    p->txn.req.accesses.push_back(a);
    int partition = k.partition;
    uint64_t key = k.key;
    p->txn.req.proc = [partition, key, v](TxnContext& ctx) {
      ChaosWorkload::OracleRow row;
      if (!ctx.Read(ChaosWorkload::kOracleTable, partition, key, &row)) {
        return TxnStatus::kAbortConflict;
      }
      row.value = v;
      row.stamp = v * 0x5CA1AB1Eull;
      ctx.Write(ChaosWorkload::kOracleTable, partition, key, &row);
      return TxnStatus::kCommitted;
    };
    p->txn.done = &ChaosOracle::Done;
    p->txn.owner = p;
    if (!engine_->SubmitExternal(&p->txn)) {
      delete p;
      return nullptr;
    }
    return p;
  }

  /// 0 = completed; -1 = abandoned (leaks the slot on purpose).  The ack
  /// budget is generous: a commit can legitimately wait out several failed
  /// fence rounds during a partition window.
  int Await(Pending& p, const std::atomic<bool>& stop) {
    uint64_t deadline = NowNanos() + MillisToNanos(25'000);
    uint64_t stop_grace = 0;
    while (p.state.load(std::memory_order_acquire) == 0) {
      if (NowNanos() > deadline) return -1;
      if (stop.load(std::memory_order_acquire)) {
        // Queued work drains at shutdown; give it a moment, then abandon.
        if (stop_grace == 0) {
          stop_grace = NowNanos() + MillisToNanos(2'000);
        } else if (NowNanos() > stop_grace) {
          return -1;
        }
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    return 0;
  }

  StarEngine* engine_;
  Rng rng_;
  std::vector<KeyState> keys_;
  uint64_t acked_ = 0;
  uint64_t acked_after_fault_ = 0;
  uint64_t aborted_ = 0;
  uint64_t submit_failures_ = 0;
  uint64_t last_ack_epoch_ = 0;
  bool stuck_ = false;
  bool epoch_regressed_ = false;
};

// ---------------------------------------------------------------------------
// Invariant checkers
// ---------------------------------------------------------------------------

/// Samples engine.epoch() and engine.durable_epoch() on a background thread
/// and flags any regression: neither may ever move backwards, faults or
/// not (a failed fence simply does not advance the epoch; revert drops the
/// *uncommitted* epoch, never a released one).
class MonotonicitySampler {
 public:
  explicit MonotonicitySampler(StarEngine* engine) : engine_(engine) {
    running_.store(true, std::memory_order_release);
    thread_ = std::thread([this] {
      uint64_t last_e = 0, last_d = 0;
      while (running_.load(std::memory_order_acquire)) {
        uint64_t e = engine_->epoch();
        uint64_t d = engine_->durable_epoch();
        if (e < last_e || d < last_d) {
          violation_.store(true, std::memory_order_release);
        }
        last_e = std::max(last_e, e);
        last_d = std::max(last_d, d);
        ++samples_;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    });
  }
  ~MonotonicitySampler() { StopAndCheck(); }

  /// Stops sampling; returns true iff epoch and durable epoch only ever
  /// moved forward.
  bool StopAndCheck() {
    if (thread_.joinable()) {
      running_.store(false, std::memory_order_release);
      thread_.join();
    }
    return !violation_.load(std::memory_order_acquire);
  }
  uint64_t samples() const { return samples_; }

 private:
  StarEngine* engine_;
  std::atomic<bool> running_{false};
  std::atomic<bool> violation_{false};
  uint64_t samples_ = 0;
  std::thread thread_;
};

/// Liveness after the faults lift: the epoch must advance by `delta` more
/// fences within `ms` — i.e. the cluster is committing again, not wedged on
/// a stale view or a parked node.
inline bool AwaitEpochAdvance(StarEngine& engine, uint64_t delta, double ms) {
  uint64_t base = engine.epoch();
  uint64_t deadline = NowNanos() + MillisToNanos(static_cast<uint64_t>(ms));
  while (NowNanos() < deadline) {
    if (engine.epoch() >= base + delta) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return engine.epoch() >= base + delta;
}

/// Replica convergence across one in-process engine: every healthy node
/// storing a partition must report the same whole-database checksum for it
/// (oracle table included).
inline bool CheckConvergence(StarEngine& engine, int nodes, int partitions,
                             std::string* diag) {
  bool ok = true;
  for (int p = 0; p < partitions; ++p) {
    bool first = true;
    uint64_t expect = 0;
    for (int n = 0; n < nodes; ++n) {
      if (!engine.IsNodeHealthy(n)) continue;
      Database* db = engine.database(n);
      if (db == nullptr || !db->HasPartition(p)) continue;
      uint64_t sum = DatabasePartitionChecksum(*db, p);
      if (first) {
        expect = sum;
        first = false;
      } else if (sum != expect) {
        ok = false;
        if (diag != nullptr) {
          *diag += "replica divergence: partition " + std::to_string(p) +
                   " node " + std::to_string(n) + "\n";
        }
      }
    }
  }
  return ok;
}

// ---------------------------------------------------------------------------
// Episode runners
// ---------------------------------------------------------------------------

struct ChaosConfig {
  double seconds = 2.4;       // sim run length (TCP adds startup slack)
  int episodes = 8;           // generated fault episodes per schedule
  bool durable = false;       // WAL + durable-epoch tracking on
  bool replica_readers = false;
  int full_replicas = 1;
  int partial_replicas = 2;
};

/// Engine options shared by the sim and TCP chaos runs.  Fault windows are
/// sized so a gray fault can delay fences but never sustain the
/// fence_miss_threshold consecutive misses a write-off requires.
inline StarOptions ChaosOptions(uint64_t seed, const ChaosConfig& cfg,
                                double window_start_ms,
                                double window_end_ms) {
  StarOptions o;
  o.cluster.full_replicas = cfg.full_replicas;
  o.cluster.partial_replicas = cfg.partial_replicas;
  o.cluster.workers_per_node = 2;
  o.iteration_ms = 10;
  o.cross_fraction = 0.15;
  o.two_version = true;
  o.fence_timeout_ms = 600;
  o.fence_miss_threshold = 3;
  o.phase_ack_wait_ms = 200;
  o.coord_rpc_retries = 2;
  o.coord_backoff_min_ms = 10;
  o.coord_backoff_max_ms = 80;
  o.rejoin_backoff_min_ms = 20;
  o.rejoin_backoff_max_ms = 200;
  if (cfg.durable) {
    o.durable_logging = true;
    o.fsync = false;  // durable-epoch plumbing without 1-vCPU fsync stalls
    o.log_dir = "/tmp/star_chaos_logs";
  }
  if (cfg.replica_readers) o.replica_read_workers = 1;
  ScheduleShape shape;
  shape.endpoints = o.cluster.nodes() + 1;
  shape.protect_node = 0;  // the full replica hosting the oracle
  shape.window_start_ms = window_start_ms;
  shape.window_end_ms = window_end_ms;
  shape.episodes = cfg.episodes;
  o.fault.enabled = true;
  o.fault.seed = seed;
  o.fault.episodes = GenerateSchedule(seed, shape);
  return o;
}

inline YcsbOptions ChaosYcsb() {
  YcsbOptions o;
  o.rows_per_partition = 2000;
  return o;
}

/// One fully in-process simulated episode.  Returns 0 on success; on any
/// invariant violation prints the schedule and returns a distinct code.
inline int RunSimChaosEpisode(uint64_t seed, const ChaosConfig& cfg,
                              std::string* diag) {
  const double window_start = 300;
  const double window_end = 1500;
  StarOptions o = ChaosOptions(seed, cfg, window_start, window_end);
  if (cfg.durable) o.log_dir += "/sim_" + std::to_string(getpid());
  ChaosWorkload wl(ChaosYcsb());
  StarEngine engine(o, wl);
  engine.Start();
  uint64_t fault_end_ns = NowNanos() + MillisToNanos(
      static_cast<uint64_t>(window_end));

  MonotonicitySampler sampler(&engine);
  ChaosOracle oracle(&engine, o.cluster.num_partitions(), seed);
  std::atomic<bool> stop{false};
  std::thread client([&] { oracle.Run(stop, fault_end_ns); });

  std::this_thread::sleep_for(std::chrono::milliseconds(
      static_cast<int64_t>(cfg.seconds * 1000)));

  // Liveness: the faults have lifted; fences must be succeeding again.
  bool live = AwaitEpochAdvance(engine, 3, 20'000);
  stop.store(true, std::memory_order_release);
  client.join();
  bool monotonic = sampler.StopAndCheck();
  engine.Stop();

  int rc = 0;
  if (!live) {
    rc = 6;
    if (diag) *diag += "liveness: epoch did not advance after faults\n";
  }
  if (!monotonic) {
    rc = 7;
    if (diag) *diag += "epoch or durable epoch regressed\n";
  }
  if (oracle.stuck() || oracle.epoch_regressed()) {
    rc = 8;
    if (diag) *diag += "oracle wedged or saw a commit-epoch regression\n";
  }
  if (!oracle.Verify(engine.database(0), diag)) rc = 5;
  if (!CheckConvergence(engine, o.cluster.nodes(),
                        o.cluster.num_partitions(), diag)) {
    rc = 9;
  }
  if (oracle.acked() == 0) {
    rc = 10;
    if (diag) *diag += "oracle never got a single ack\n";
  }
  return rc;
}

// --- TCP multiprocess episode -----------------------------------------------

/// Coordinator body: drive the cluster through the fault window, demand
/// epoch/durable monotonicity and post-fault liveness, then run the normal
/// shutdown round and judge the summary (all nodes reporting, commits in
/// both classes, checksums converged).
inline int ChaosCoordinatorBody(const StarOptions& base, double seconds) {
  ChaosWorkload wl(ChaosYcsb());
  StarEngine engine(driver::ForRole(base, /*coordinator=*/true, -1, false),
                    wl);
  engine.Start();
  MonotonicitySampler sampler(&engine);
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int64_t>(seconds * 1000)));
  bool live = AwaitEpochAdvance(engine, 3, 20'000);
  bool monotonic = sampler.StopAndCheck();
  engine.Stop();
  const StarEngine::ClusterSummary& s = engine.cluster_summary();
  int n = base.cluster.nodes();
  std::fprintf(stderr,
               "[chaos coord] reporting=%d/%d committed=%llu cross=%llu "
               "converged=%s live=%s epoch=%llu durable=%llu\n",
               s.nodes_reporting, n,
               static_cast<unsigned long long>(s.committed),
               static_cast<unsigned long long>(s.cross_partition),
               s.converged ? "yes" : "NO", live ? "yes" : "NO",
               static_cast<unsigned long long>(engine.epoch()),
               static_cast<unsigned long long>(engine.durable_epoch()));
  if (!monotonic) return 7;
  if (!live) return 6;
  // Gray faults must not cost us a node: every process reports.
  bool ok = s.valid && s.nodes_reporting == n && s.committed > 0 &&
            s.cross_partition > 0 && s.converged;
  return ok ? 0 : 1;
}

/// Node body: node 0 (the protected full replica, colocated with the
/// designated master) additionally runs the acked-commit oracle and checks
/// it against its own replica after the shutdown round.
inline int ChaosNodeBody(const StarOptions& base, int id, double seconds,
                         uint64_t fault_end_ns) {
  ChaosWorkload wl(ChaosYcsb());
  StarEngine engine(driver::ForRole(base, /*coordinator=*/false, id, false),
                    wl);
  engine.Start();
  MonotonicitySampler sampler(&engine);

  std::unique_ptr<ChaosOracle> oracle;
  std::atomic<bool> stop{false};
  std::thread client;
  if (id == 0) {
    oracle = std::make_unique<ChaosOracle>(
        &engine, base.cluster.num_partitions(), base.fault.seed);
    client = std::thread([&] { oracle->Run(stop, fault_end_ns); });
  }

  bool served = engine.WaitForShutdown(seconds * 1000.0 + 30'000.0);
  stop.store(true, std::memory_order_release);
  if (client.joinable()) client.join();
  bool monotonic = sampler.StopAndCheck();

  int rc = 0;
  std::string diag;
  if (oracle != nullptr) {
    // Stop() has drained the trackers: every in-flight done has fired.
    Metrics m = engine.Stop();
    (void)m;
    if (!oracle->Verify(engine.database(0), &diag)) rc = 5;
    if (oracle->acked() == 0 || oracle->stuck()) rc = 8;
    if (oracle->acked_after_fault() == 0 && rc == 0) rc = 8;
    std::fprintf(stderr,
                 "[chaos node 0] acked=%llu after_fault=%llu aborted=%llu "
                 "stuck=%d %s\n",
                 static_cast<unsigned long long>(oracle->acked()),
                 static_cast<unsigned long long>(oracle->acked_after_fault()),
                 static_cast<unsigned long long>(oracle->aborted()),
                 oracle->stuck() ? 1 : 0, diag.c_str());
  } else {
    engine.Stop();
  }
  if (!monotonic) rc = 7;
  if (!served && rc == 0) rc = 2;
  return rc;
}

/// Forks a coordinator plus one process per node, all sharing one seeded
/// fault schedule anchored to a common CLOCK_MONOTONIC origin stamped
/// before the forks.  Returns 0 iff every process upheld every invariant.
inline int RunTcpChaosEpisode(uint64_t seed, const ChaosConfig& cfg) {
  // The window starts after the startup barrier + population typically
  // finish on the 1-vCPU host, so faults land on a running cluster.
  const double window_start = 2'000;
  const double window_end = 3'600;
  const double seconds = cfg.seconds + window_end / 1000.0;
  StarOptions base = ChaosOptions(seed, cfg, window_start, window_end);
  base.transport = net::TransportKind::kTcp;
  int n = base.cluster.nodes();
  base.tcp_base_port = driver::PickFreeBasePort(n + 1);
  if (cfg.durable) base.log_dir += "/tcp_" + std::to_string(getpid());
  // One origin for every process: fault windows line up cluster-wide.
  base.fault.origin_ns = NowNanos();
  uint64_t fault_end_ns =
      base.fault.origin_ns + MillisToNanos(static_cast<uint64_t>(window_end));

  pid_t coord = fork();
  if (coord == 0) _exit(ChaosCoordinatorBody(base, seconds));
  std::vector<pid_t> pids(n, -1);
  for (int i = 0; i < n; ++i) {
    pid_t p = fork();
    if (p == 0) _exit(ChaosNodeBody(base, i, seconds, fault_end_ns));
    pids[i] = p;
  }

  int rc = 0, status = 0;
  waitpid(coord, &status, 0);
  int coord_rc = WIFEXITED(status) ? WEXITSTATUS(status) : 100;
  if (coord_rc != 0) rc = coord_rc;
  for (int i = 0; i < n; ++i) {
    waitpid(pids[i], &status, 0);
    int node_rc = WIFEXITED(status) ? WEXITSTATUS(status) : 100;
    if (node_rc != 0 && rc == 0) rc = 10 + node_rc;
  }
  if (rc != 0) PrintSchedule(seed, base.fault.episodes, stderr);
  return rc;
}

}  // namespace star::chaos

#endif  // STAR_TESTS_CHAOS_UTIL_H_
