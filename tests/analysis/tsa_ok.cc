// Positive control for the configure-time thread-safety checks: correctly
// guarded code must compile cleanly under -Werror=thread-safety.  If this
// fails, the analysis flags are wrong (or the wrappers lost their
// annotations) and every negative check below would "pass" vacuously.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Add(int delta) {
    star::MutexLock g(mu_);
    value_ += delta;
  }

  int Get() {
    star::MutexLock g(mu_);
    return value_;
  }

 private:
  star::Mutex mu_;
  int value_ STAR_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Add(1);
  return c.Get() == 1 ? 0 : 1;
}
