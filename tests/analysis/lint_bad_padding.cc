// star_lint fixture (registered in CMake with WILL_FAIL): two cross-thread
// atomic counters in one unaligned struct share a cacheline; the padding
// check must demand alignas(64) / STAR_CACHELINE_ALIGNED.
#include <atomic>
#include <cstdint>

namespace {

struct Stats {  // BUG (deliberate): not cacheline-aligned
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> aborted{0};
};

Stats stats;

}  // namespace

int main() {
  stats.committed.fetch_add(1, std::memory_order_relaxed);
  return 0;
}
