// star_lint fixture (registered in CMake with WILL_FAIL): a function tagged
// STAR_HOT_PATH that heap-allocates.  The hot-path check must flag the
// allocation — commit/replay/snapshot-read paths are allocation-free by
// contract.
#include <vector>

#include "common/thread_annotations.h"

namespace {

std::vector<int> sink;

STAR_HOT_PATH int Commit(int v) {
  int* boxed = new int(v);  // BUG (deliberate): allocation on a hot path
  sink.push_back(*boxed);   // BUG (deliberate): growing container op
  int out = *boxed;
  delete boxed;
  return out;
}

}  // namespace

int main() { return Commit(0); }
