// star_lint fixture (registered in CMake with WILL_FAIL): implicit atomic
// operators compile to seq_cst without anyone having chosen an ordering.
// The memory-order check must flag every access here.
#include <atomic>
#include <cstdint>

namespace {

std::atomic<uint64_t> counter{0};

uint64_t Bump() {
  counter++;                  // implicit read-modify-write, seq_cst
  counter = 7;                // implicit store, seq_cst
  uint64_t v = counter.load();  // explicit call, but no memory_order argument
  return v;
}

}  // namespace

int main() { return Bump() == 7 ? 0 : 1; }
