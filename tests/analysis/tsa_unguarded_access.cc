// Negative check: a STAR_GUARDED_BY field touched without holding its mutex
// must be REJECTED by clang's thread-safety analysis.  CMake try_compiles
// this expecting failure; if it compiles, the analysis is not actually
// enforcing the lock contracts.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Add(int delta) {
    value_ += delta;  // BUG (deliberate): no lock held
  }

 private:
  star::Mutex mu_;
  int value_ STAR_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Add(1);
  return 0;
}
