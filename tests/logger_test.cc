// LoggerPool / durable-epoch units: lane->logger handoff, the min-over-
// lanes durable watermark, revert poisoning, incarnation completeness
// gating, and the incremental checkpoint chain (base + O(delta) links).

#include "wal/logger.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/tid.h"
#include "storage/database.h"
#include "wal/wal.h"

namespace star::wal {
namespace {

std::unique_ptr<Database> MakeDb() {
  std::vector<TableSchema> schemas{{"t", 8, 1024}};
  return std::make_unique<Database>(schemas, 1, std::vector<int>{0}, false);
}

void AppendU64(LogLane* lane, uint64_t key, uint64_t tid, uint64_t v) {
  lane->Append(0, 0, key, tid, {reinterpret_cast<const char*>(&v), sizeof(v)});
}

uint64_t ReadKey(Database* db, uint64_t key) {
  uint64_t out = 0;
  db->table(0, 0)->GetRow(key).ReadStable(&out);
  return out;
}

class LoggerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/star_logger_test_" + std::to_string(::getpid());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  LoggerPoolOptions Opts(int lanes, int loggers) {
    LoggerPoolOptions lo;
    lo.dir = dir_;
    lo.node = 0;
    lo.num_lanes = lanes;
    lo.num_loggers = loggers;
    return lo;
  }

  std::string dir_;
};

TEST_F(LoggerTest, DurableEpochIsMinOverLanes) {
  LoggerPool pool(Opts(2, 2));
  AppendU64(pool.lane(0), 1, Tid::Make(1, 1, 0), 10);
  AppendU64(pool.lane(1), 2, Tid::Make(1, 2, 1), 20);
  pool.lane(0)->MarkEpoch(1);
  pool.Drain();
  EXPECT_EQ(pool.durable_epoch(), 0u)
      << "an epoch is durable only once EVERY lane has sealed it";
  pool.lane(1)->MarkEpoch(1);
  pool.Drain();
  EXPECT_EQ(pool.durable_epoch(), 1u);
  EXPECT_GT(pool.epoch_markers(), 0u);
  EXPECT_GT(pool.batches(), 0u);
}

TEST_F(LoggerTest, ShardFilesOnePerLogger) {
  LoggerPool pool(Opts(4, 2));
  EXPECT_EQ(pool.num_lanes(), 4);
  for (int s = 0; s < 2; ++s) {
    EXPECT_TRUE(std::filesystem::exists(
        LoggerPool::ShardPath(dir_, 0, pool.incarnation(), s)))
        << "shard " << s;
  }
  EXPECT_FALSE(std::filesystem::exists(
      LoggerPool::ShardPath(dir_, 0, pool.incarnation(), 2)));
}

TEST_F(LoggerTest, IncompleteIncarnationCannotClaimEpochs) {
  // Incarnation 1 writes a durable epoch but never MarkComplete()s —
  // the shape of a process that died mid-rejoin-fetch: its markers are
  // honest, its state basis is not.
  {
    LoggerPool pool(Opts(1, 1));
    EXPECT_EQ(pool.incarnation(), 1);
    AppendU64(pool.lane(0), 7, Tid::Make(1, 1, 0), 111);
    pool.lane(0)->MarkEpoch(1);
    pool.Drain();
    EXPECT_EQ(pool.durable_epoch(), 1u);
    pool.Stop();
  }
  {
    auto db = MakeDb();
    RecoveryResult r = Recover(db.get(), dir_, 0);
    EXPECT_EQ(r.committed_epoch, 0u)
        << "an incomplete incarnation claimed its epochs for the node";
    EXPECT_EQ(r.incarnations, 1);
  }

  // Incarnation 2 completes: it claims its own epochs, and incarnation 1's
  // entries still replay under the Thomas rule below their own ceiling.
  {
    LoggerPool pool(Opts(1, 1));
    EXPECT_EQ(pool.incarnation(), 2);
    pool.MarkComplete();
    AppendU64(pool.lane(0), 8, Tid::Make(2, 1, 0), 222);
    pool.lane(0)->MarkEpoch(2);
    pool.Drain();
    pool.Stop();
  }
  auto db = MakeDb();
  RecoveryResult r = Recover(db.get(), dir_, 0);
  EXPECT_EQ(r.committed_epoch, 2u);
  EXPECT_EQ(r.incarnations, 2);
  EXPECT_EQ(ReadKey(db.get(), 7), 111u);
  EXPECT_EQ(ReadKey(db.get(), 8), 222u);
}

TEST_F(LoggerTest, RevertPoisonsEpochUntilRecommit) {
  LoggerPool pool(Opts(1, 1));
  pool.MarkComplete();
  LogLane* lane = pool.lane(0);
  AppendU64(lane, 1, Tid::Make(1, 1, 0), 10);
  lane->MarkEpoch(1);
  pool.Drain();
  EXPECT_EQ(pool.durable_epoch(), 1u);

  // Failed fence: epoch 2's write hits the lane, then the fence reverts.
  // The doomed write carries a HIGHER sequence than the recommit below, so
  // only the revert entry's position — not the Thomas rule — can save us.
  AppendU64(lane, 1, Tid::Make(2, 9, 0), 20);
  pool.MarkRevert(2);
  pool.Drain();
  EXPECT_EQ(pool.durable_epoch(), 1u)
      << "a reverted epoch must not count as durable";

  // Epoch 2 recommits after the revert with a fresh (lower) sequence.
  AppendU64(lane, 1, Tid::Make(2, 1, 0), 30);
  lane->MarkEpoch(2);
  pool.Drain();
  EXPECT_EQ(pool.durable_epoch(), 2u);
  pool.Stop();

  auto db = MakeDb();
  RecoveryResult r = Recover(db.get(), dir_, 0);
  EXPECT_EQ(r.committed_epoch, 2u);
  EXPECT_EQ(r.log_entries_skipped, 1u) << "the pre-revert write must be skipped";
  EXPECT_EQ(ReadKey(db.get(), 1), 30u)
      << "recovery replayed a write from before the revert";
}

TEST_F(LoggerTest, IncrementalCheckpointChainIsODelta) {
  constexpr uint64_t kRows = 200;
  auto db = MakeDb();
  std::atomic<uint64_t> stable{0};
  LoggerPool pool(Opts(1, 1));
  pool.MarkComplete();
  LogLane* lane = pool.lane(0);

  for (uint64_t key = 1; key <= kRows; ++key) {
    uint64_t tid = Tid::Make(1, key, 0);
    uint64_t v = 1000 + key;
    AppendU64(lane, key, tid, v);
    HashTable::Row row = db->table(0, 0)->GetOrInsertRow(key);
    row.rec->ApplyThomas(tid, &v, row.size, row.value, db->two_version());
  }
  lane->MarkEpoch(1);
  pool.Drain();

  Checkpointer ckpt(db.get(), dir_, 0, &stable);
  stable.store(1);
  EXPECT_EQ(ckpt.RunOnce(), 1u);
  uint64_t base_entries = ckpt.entries_written();
  EXPECT_EQ(base_entries, kRows);

  // Epoch 2 touches 3 rows out of 200; the delta must record exactly those.
  for (uint64_t key = 1; key <= 3; ++key) {
    uint64_t tid = Tid::Make(2, key, 0);
    uint64_t v = 2000 + key;
    AppendU64(lane, key, tid, v);
    HashTable::Row row = db->table(0, 0)->GetOrInsertRow(key);
    row.rec->ApplyThomas(tid, &v, row.size, row.value, db->two_version());
  }
  lane->MarkEpoch(2);
  pool.Drain();
  stable.store(2);
  EXPECT_EQ(ckpt.RunOnce(), 2u);
  EXPECT_EQ(ckpt.entries_written() - base_entries, 3u)
      << "delta link recorded unchanged rows";
  pool.Stop();

  std::vector<CheckpointChainEntry> chain;
  ASSERT_TRUE(LoadCheckpointManifest(CheckpointManifestPath(dir_, 0), &chain));
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain[0].kind, 0);
  EXPECT_EQ(chain[1].kind, 1);
  EXPECT_EQ(chain[0].stable_epoch, 1u);
  EXPECT_EQ(chain[1].from_epoch, 1u);
  EXPECT_EQ(chain[1].stable_epoch, 2u);

  auto fresh = MakeDb();
  RecoveryResult r = Recover(fresh.get(), dir_, 0);
  EXPECT_TRUE(r.used_checkpoint);
  EXPECT_TRUE(r.has_base);
  EXPECT_EQ(r.committed_epoch, 2u);
  EXPECT_EQ(ReadKey(fresh.get(), 1), 2001u);
  EXPECT_EQ(ReadKey(fresh.get(), 2), 2002u);
  EXPECT_EQ(ReadKey(fresh.get(), 100), 1100u);
}

int CountFiles(const std::string& dir, const std::string& substr) {
  int n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().filename().string().find(substr) != std::string::npos) {
      ++n;
    }
  }
  return n;
}

TEST_F(LoggerTest, RotatedSegmentsRecoverWithoutGc) {
  // Rotation alone (no checkpointer, nothing deleted): the per-shard
  // segment files must concatenate back into one logical stream, with each
  // segment's head carry-over marker a harmless restatement.
  constexpr uint64_t kEpochs = 10;
  {
    LoggerPoolOptions lo = Opts(1, 1);
    lo.segment_bytes = 512;  // a handful of entries per segment
    LoggerPool pool(lo);
    pool.MarkComplete();
    for (uint64_t e = 1; e <= kEpochs; ++e) {
      for (uint64_t key = 1; key <= 10; ++key) {
        AppendU64(pool.lane(0), key, Tid::Make(e, key, 0), e * 100 + key);
      }
      pool.lane(0)->MarkEpoch(e);
      pool.Drain();
    }
    pool.Stop();
    EXPECT_GT(pool.segments_rotated(), 2u) << "rotation never engaged";
    EXPECT_EQ(pool.wal_files_deleted(), 0u) << "nothing may GC without Gc()";
  }
  auto db = MakeDb();
  RecoveryResult r = Recover(db.get(), dir_, 0);
  EXPECT_EQ(r.committed_epoch, kEpochs);
  EXPECT_EQ(ReadKey(db.get(), 3), kEpochs * 100 + 3);
  EXPECT_EQ(ReadKey(db.get(), 10), kEpochs * 100 + 10);
}

TEST_F(LoggerTest, WalGcBoundsTheLogDirUnderSustainedLoad) {
  // The durability disk-footprint bound (ISSUE 9): sustained load with
  // rotation + chain compaction + segment GC must hold the directory at a
  // constant file count — segments covered by the chain are deleted, the
  // chain itself compacts into a fresh base — while recovery from whatever
  // survives stays exact.
  constexpr uint64_t kEpochs = 30;
  auto db = MakeDb();
  std::atomic<uint64_t> stable{0};
  LoggerPoolOptions lo = Opts(1, 1);
  lo.segment_bytes = 512;
  LoggerPool pool(lo);
  pool.MarkComplete();
  Checkpointer ckpt(db.get(), dir_, 0, &stable, /*max_chain_links=*/3);

  for (uint64_t e = 1; e <= kEpochs; ++e) {
    for (uint64_t key = 1; key <= 10; ++key) {
      uint64_t tid = Tid::Make(e, key, 0);
      uint64_t v = e * 100 + key;
      AppendU64(pool.lane(0), key, tid, v);
      HashTable::Row row = db->table(0, 0)->GetOrInsertRow(key);
      row.rec->ApplyThomas(tid, &v, row.size, row.value, db->two_version());
    }
    pool.lane(0)->MarkEpoch(e);
    pool.Drain();
    stable.store(e);
    pool.Gc(ckpt.RunOnce());
    // The bound, asserted at every step: the live segment, at most a
    // couple of closed-but-not-yet-covered segments, and the `.ok` marker.
    EXPECT_LE(CountFiles(dir_, "wal_node0"), 5) << "epoch " << e;
    EXPECT_LE(CountFiles(dir_, ".dat"), 4) << "epoch " << e;
  }
  EXPECT_GT(pool.segments_rotated(), 5u);
  EXPECT_GT(pool.wal_files_deleted(), 0u) << "segment GC never engaged";
  EXPECT_GT(ckpt.chain_files_deleted(), 0u) << "chain never compacted";
  EXPECT_LE(ckpt.chain_length(), 3u);
  pool.Stop();

  // The carry-over markers must make the GC'd prefix invisible to the
  // watermark scan: recovery still claims the final epoch.
  auto fresh = MakeDb();
  RecoveryResult r = Recover(fresh.get(), dir_, 0);
  EXPECT_TRUE(r.used_checkpoint);
  EXPECT_EQ(r.committed_epoch, kEpochs);
  for (uint64_t key = 1; key <= 10; ++key) {
    EXPECT_EQ(ReadKey(fresh.get(), key), kEpochs * 100 + key) << key;
  }
}

TEST_F(LoggerTest, ChainCompactionSweepsSupersededLinks) {
  auto db = MakeDb();
  std::atomic<uint64_t> stable{0};
  LoggerPool pool(Opts(1, 1));
  pool.MarkComplete();
  Checkpointer ckpt(db.get(), dir_, 0, &stable, /*max_chain_links=*/3);

  for (uint64_t e = 1; e <= 8; ++e) {
    uint64_t tid = Tid::Make(e, 1, 0);
    uint64_t v = 1000 + e;
    AppendU64(pool.lane(0), 1, tid, v);
    HashTable::Row row = db->table(0, 0)->GetOrInsertRow(1);
    row.rec->ApplyThomas(tid, &v, row.size, row.value, db->two_version());
    pool.lane(0)->MarkEpoch(e);
    pool.Drain();
    stable.store(e);
    EXPECT_EQ(ckpt.RunOnce(), e);
  }
  pool.Stop();

  EXPECT_LE(ckpt.chain_length(), 3u);
  EXPECT_GT(ckpt.chain_files_deleted(), 0u);
  EXPECT_EQ(CountFiles(dir_, ".dat"), static_cast<int>(ckpt.chain_length()))
      << "a swept chain leaves exactly the manifest's files on disk";

  std::vector<CheckpointChainEntry> chain;
  ASSERT_TRUE(LoadCheckpointManifest(CheckpointManifestPath(dir_, 0), &chain));
  ASSERT_FALSE(chain.empty());
  EXPECT_EQ(chain[0].kind, 0) << "a compacted chain restarts from a base";

  auto fresh = MakeDb();
  RecoveryResult r = Recover(fresh.get(), dir_, 0);
  EXPECT_TRUE(r.used_checkpoint);
  EXPECT_TRUE(r.has_base);
  EXPECT_EQ(r.committed_epoch, 8u);
  EXPECT_EQ(ReadKey(fresh.get(), 1), 1008u);
}

TEST_F(LoggerTest, PriorIncarnationsAreSweptOnceTheChainCoversThem) {
  // Incarnation 1 commits epoch 1 and stops cleanly.
  {
    LoggerPool pool(Opts(1, 1));
    pool.MarkComplete();
    for (uint64_t key = 1; key <= 5; ++key) {
      AppendU64(pool.lane(0), key, Tid::Make(1, key, 0), 100 + key);
    }
    pool.lane(0)->MarkEpoch(1);
    pool.Drain();
    pool.Stop();
  }

  // The restart recovers, then runs with a checkpointer; once the chain
  // covers the recovered epoch, incarnation 1's files are superseded.
  auto db = MakeDb();
  RecoveryResult rr = Recover(db.get(), dir_, 0);
  ASSERT_EQ(rr.committed_epoch, 1u);
  {
    LoggerPool pool(Opts(1, 1));
    ASSERT_EQ(pool.incarnation(), 2);
    pool.MarkComplete();
    pool.SetPriorCommitted(rr.committed_epoch);
    std::atomic<uint64_t> stable{0};
    Checkpointer ckpt(db.get(), dir_, 0, &stable);

    uint64_t tid = Tid::Make(2, 6, 0);
    uint64_t v = 106;
    AppendU64(pool.lane(0), 6, tid, v);
    HashTable::Row row = db->table(0, 0)->GetOrInsertRow(6);
    row.rec->ApplyThomas(tid, &v, row.size, row.value, db->two_version());
    pool.lane(0)->MarkEpoch(2);
    pool.Drain();

    // Not yet covered: no chain link has landed (stable is still 0, so
    // RunOnce returns 0) and nothing may be deleted.
    pool.Gc(ckpt.RunOnce());
    EXPECT_TRUE(std::filesystem::exists(LoggerPool::ShardPath(dir_, 0, 1, 0)));

    stable.store(2);
    pool.Gc(ckpt.RunOnce());
    EXPECT_FALSE(std::filesystem::exists(LoggerPool::ShardPath(dir_, 0, 1, 0)))
        << "superseded incarnation's shard survived GC";
    EXPECT_FALSE(std::filesystem::exists(LoggerPool::CompletePath(dir_, 0, 1)));
    EXPECT_GE(pool.wal_files_deleted(), 2u);
    pool.Stop();
  }

  // Everything incarnation 1 held now comes back through the chain.
  auto fresh = MakeDb();
  RecoveryResult r = Recover(fresh.get(), dir_, 0);
  EXPECT_TRUE(r.used_checkpoint);
  EXPECT_EQ(r.committed_epoch, 2u);
  for (uint64_t key = 1; key <= 5; ++key) {
    EXPECT_EQ(ReadKey(fresh.get(), key), 100 + key) << key;
  }
  EXPECT_EQ(ReadKey(fresh.get(), 6), 106u);
}

TEST_F(LoggerTest, EmptyDeltaAddsNoChainLink) {
  auto db = MakeDb();
  std::atomic<uint64_t> stable{0};
  uint64_t tid = Tid::Make(1, 1, 0);
  uint64_t v = 5;
  HashTable::Row row = db->table(0, 0)->GetOrInsertRow(9);
  row.rec->ApplyThomas(tid, &v, row.size, row.value, db->two_version());

  Checkpointer ckpt(db.get(), dir_, 0, &stable);
  stable.store(1);
  EXPECT_EQ(ckpt.RunOnce(), 1u);
  stable.store(2);  // durable advanced, but nothing changed
  ckpt.RunOnce();
  std::vector<CheckpointChainEntry> chain;
  ASSERT_TRUE(LoadCheckpointManifest(CheckpointManifestPath(dir_, 0), &chain));
  EXPECT_EQ(chain.size(), 1u)
      << "an empty delta only grows the chain; the log tail covers it";
}

}  // namespace
}  // namespace star::wal
