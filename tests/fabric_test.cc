// Simulated network fabric (SimTransport) and RPC endpoints — the model
// substituting for the paper's EC2 cluster (see DESIGN.md Section 2) and
// the bits of it that real TCP does not provide: the latency/bandwidth
// model.  Cross-implementation behaviour lives in
// transport_conformance_test.cc.

#include "net/fabric.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/clock.h"
#include "net/endpoint.h"

namespace star::net {
namespace {

SimNetOptions FastNet() {
  SimNetOptions o;
  o.link_latency_us = 50;
  o.bandwidth_gbps = 4.8;
  return o;
}

Message Make(int src, int dst, std::string payload) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.type = MsgType::kPing;
  m.payload = std::move(payload);
  return m;
}

TEST(SimTransport, DeliversAfterLatency) {
  SimTransport f(2, FastNet());
  uint64_t t0 = NowNanos();
  f.Send(Make(0, 1, "hi"));
  Message out;
  EXPECT_FALSE(f.Poll(1, &out)) << "nothing deliverable immediately";
  while (!f.Poll(1, &out)) {
    CpuRelax();
  }
  uint64_t elapsed = NowNanos() - t0;
  EXPECT_GE(elapsed, MicrosToNanos(50));
  EXPECT_EQ(out.payload, "hi");
}

TEST(SimTransport, FifoPerLink) {
  SimTransport f(2, FastNet());
  for (int i = 0; i < 100; ++i) {
    f.Send(Make(0, 1, std::to_string(i)));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  Message out;
  for (int i = 0; i < 100; ++i) {
    while (!f.Poll(1, &out)) CpuRelax();
    EXPECT_EQ(out.payload, std::to_string(i)) << "FIFO violated";
  }
}

TEST(SimTransport, BandwidthSerialisesLargeMessages) {
  SimNetOptions o = FastNet();
  o.bandwidth_gbps = 0.1;  // 100 Mbit/s: 1 MB takes ~80 ms
  SimTransport f(2, o);
  uint64_t t0 = NowNanos();
  f.Send(Make(0, 1, std::string(1 << 20, 'x')));
  Message out;
  while (!f.Poll(1, &out)) std::this_thread::yield();
  double ms = (NowNanos() - t0) / 1e6;
  EXPECT_GT(ms, 50) << "transmission delay must reflect bandwidth";
}

TEST(SimTransport, DownNodeDropsTraffic) {
  SimTransport f(2, FastNet());
  f.SetDown(1, true);
  f.Send(Make(0, 1, "lost"));
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  Message out;
  EXPECT_FALSE(f.Poll(1, &out));
  f.SetDown(1, false);
  EXPECT_FALSE(f.Poll(1, &out)) << "dropped messages do not resurrect";
}

TEST(SimTransport, CountsBytesAndMessages) {
  SimTransport f(2, FastNet());
  f.Send(Make(0, 1, std::string(100, 'a')));
  EXPECT_EQ(f.total_messages(), 1u);
  EXPECT_GT(f.total_bytes(), 100u) << "per-message overhead counted";
}

TEST(Endpoint, RpcRoundTrip) {
  SimTransport f(2, FastNet());
  Endpoint server(&f, 0), client(&f, 1);
  server.RegisterHandler(MsgType::kPing, [&](Message&& m) {
    server.Respond(m, MsgType::kPong, "pong:" + m.payload);
  });
  server.Start();
  client.Start();
  std::string resp;
  ASSERT_TRUE(client.Call(0, MsgType::kPing, "42", &resp));
  EXPECT_EQ(resp, "pong:42");
  client.Stop();
  server.Stop();
}

TEST(Endpoint, ParallelCallsComplete) {
  SimTransport f(2, FastNet());
  Endpoint server(&f, 0), client(&f, 1);
  server.RegisterHandler(MsgType::kPing, [&](Message&& m) {
    server.Respond(m, MsgType::kPong, m.payload);
  });
  server.Start();
  client.Start();
  std::vector<uint64_t> tokens;
  for (int i = 0; i < 32; ++i) {
    tokens.push_back(client.CallAsync(0, MsgType::kPing, std::to_string(i)));
  }
  for (int i = 0; i < 32; ++i) {
    std::string resp;
    ASSERT_TRUE(client.Wait(tokens[i], &resp));
    EXPECT_EQ(resp, std::to_string(i));
  }
  client.Stop();
  server.Stop();
}

TEST(Endpoint, CallToDeadNodeTimesOut) {
  SimTransport f(2, FastNet());
  Endpoint client(&f, 1);
  client.Start();
  f.SetDown(0, true);
  std::string resp;
  uint64_t t0 = NowNanos();
  EXPECT_FALSE(client.Call(0, MsgType::kPing, "x", &resp,
                           MillisToNanos(50)));
  EXPECT_GE(NowNanos() - t0, MillisToNanos(40));
  client.Stop();
}

TEST(Endpoint, IsReadyNonDestructive) {
  SimTransport f(2, FastNet());
  Endpoint server(&f, 0), client(&f, 1);
  server.RegisterHandler(MsgType::kPing, [&](Message&& m) {
    server.Respond(m, MsgType::kPong, "done");
  });
  server.Start();
  client.Start();
  uint64_t tok = client.CallAsync(0, MsgType::kPing, "x");
  while (!client.IsReady(tok)) std::this_thread::yield();
  EXPECT_TRUE(client.IsReady(tok)) << "IsReady must not consume the token";
  std::string resp;
  EXPECT_TRUE(client.Wait(tok, &resp));
  EXPECT_EQ(resp, "done");
  client.Stop();
  server.Stop();
}

}  // namespace
}  // namespace star::net
