// Replica-served snapshot reads (cc/snapshot.h): the applied-epoch
// watermark's algebra, SnapshotContext's visibility and validation rules,
// and — the load-bearing property — a randomized consistency fuzz: snapshot
// readers racing live replication replay (serial and sharded) must never
// observe a partially applied fence epoch, and monotonic readers must never
// see a record's time run backwards.

#include "cc/snapshot.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "baselines/pb_occ.h"
#include "common/rng.h"
#include "core/engine.h"
#include "replication/applier.h"
#include "replication/log_entry.h"
#include "replication/sharded_applier.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace star {
namespace {

// ---------------------------------------------------------------------------
// AppliedEpochWatermark algebra
// ---------------------------------------------------------------------------

TEST(AppliedEpochWatermark, PublishIsMonotonicMax) {
  AppliedEpochWatermark w(1);
  EXPECT_EQ(w.watermark(), 0u);
  w.Publish(0, 3);
  EXPECT_EQ(w.applied(0), 3u);
  w.Publish(0, 2);  // late duplicate fence round: never moves backwards
  EXPECT_EQ(w.applied(0), 3u);
  w.Publish(0, 7);
  EXPECT_EQ(w.watermark(), 7u);
}

TEST(AppliedEpochWatermark, WatermarkIsMinOverActiveSources) {
  AppliedEpochWatermark w(3);
  w.Publish(0, 5);
  w.Publish(1, 3);
  w.Publish(2, 9);
  EXPECT_EQ(w.watermark(), 3u) << "the laggard source bounds the snapshot";
  w.Publish(1, 8);
  EXPECT_EQ(w.watermark(), 5u);
}

TEST(AppliedEpochWatermark, FailedSourceLeavesTheMinimum) {
  AppliedEpochWatermark w(3);
  w.Publish(0, 5);
  w.Publish(1, 1);
  w.Publish(2, 6);
  ASSERT_EQ(w.watermark(), 1u);
  w.SetActive(1, false);  // node 1 declared failed: its stream is ignored
  EXPECT_EQ(w.watermark(), 5u) << "a dead node must not freeze the watermark";
  w.SetActive(1, true);  // rejoining: participates again
  EXPECT_EQ(w.watermark(), 1u);
}

TEST(AppliedEpochWatermark, RevertClampsToLastSurvivingEpoch) {
  AppliedEpochWatermark w(2);
  w.Publish(0, 6);
  w.Publish(1, 6);
  w.Revert(6);  // epoch 6 rolled back by failure handling
  EXPECT_EQ(w.applied(0), 5u);
  EXPECT_EQ(w.applied(1), 5u);
  EXPECT_EQ(w.watermark(), 5u);
  w.Revert(10);  // reverting an epoch nobody reached is a no-op
  EXPECT_EQ(w.watermark(), 5u);
}

TEST(AppliedEpochWatermark, ResetZeroesEverySource) {
  AppliedEpochWatermark w(2);
  w.Publish(0, 4);
  w.Publish(1, 9);
  w.Reset();  // rejoin storage reset: nothing servable until republished
  EXPECT_EQ(w.watermark(), 0u);
  EXPECT_EQ(w.applied(0), 0u);
  EXPECT_EQ(w.applied(1), 0u);
}

// ---------------------------------------------------------------------------
// SnapshotContext visibility and validation
// ---------------------------------------------------------------------------

constexpr uint32_t kValueSize = 32;
constexpr int kPartitions = 2;
constexpr uint64_t kKeys = 64;

std::unique_ptr<Database> MakeDb() {
  std::vector<TableSchema> schemas{{"t", kValueSize, 256}};
  return std::make_unique<Database>(schemas, kPartitions,
                                    std::vector<int>{0, 1}, false);
}

std::string ValueAt(uint64_t key, uint64_t epoch) {
  std::string v(kValueSize, '\0');
  std::memcpy(v.data(), &epoch, sizeof(epoch));
  std::memcpy(v.data() + 8, &key, sizeof(key));
  for (size_t i = 16; i < v.size(); ++i) {
    v[i] = static_cast<char>((key * 131 + epoch * 31 + i) & 0x7f);
  }
  return v;
}

/// Installs `key = ValueAt(key, epoch)` through the real replication path.
void ApplyWrite(ReplicationApplier& applier, int partition, uint64_t key,
                uint64_t epoch, uint64_t seq) {
  WriteBuffer buf;
  SerializeValueEntry(buf, 0, partition, key, Tid::Make(epoch, seq, 0),
                      ValueAt(key, epoch));
  applier.ApplyBatch(0, buf.data());
}

TEST(SnapshotContext, ServesBulkLoadedStateAtWatermarkZero) {
  auto db = MakeDb();
  std::string loaded = ValueAt(1, 0);
  db->Load(0, 0, 1, loaded.data());
  AppliedEpochWatermark w(1);  // no fence yet: watermark 0
  Rng rng(1);
  SnapshotContext ctx(db.get(), &w, ReplicaReadMode::kSnapshot, &rng, 0);
  ctx.Begin();
  std::string out(kValueSize, '\0');
  ASSERT_TRUE(ctx.Read(0, 0, 1, out.data()))
      << "loaded records carry epoch-0 TIDs and are visible pre-fence";
  EXPECT_EQ(out, loaded);
  EXPECT_FALSE(ctx.Read(0, 0, 2, out.data())) << "never-inserted key";
  EXPECT_FALSE(ctx.conflicted()) << "a missing record is not a conflict";
  EXPECT_TRUE(ctx.Commit());
}

TEST(SnapshotContext, RejectsVersionPastThePinnedWatermark) {
  auto db = MakeDb();
  ReplicationCounters counters(1);
  ReplicationApplier applier(db.get(), &counters);
  ApplyWrite(applier, 0, 1, /*epoch=*/2, 1);
  ApplyWrite(applier, 0, 2, /*epoch=*/3, 2);  // in-flight: past the fence
  AppliedEpochWatermark w(1);
  w.Publish(0, 2);
  Rng rng(1);
  SnapshotContext ctx(db.get(), &w, ReplicaReadMode::kSnapshot, &rng, 0);
  ctx.Begin();
  std::string out(kValueSize, '\0');
  EXPECT_TRUE(ctx.Read(0, 0, 1, out.data()));
  EXPECT_FALSE(ctx.Read(0, 0, 2, out.data()))
      << "epoch-3 version must be invisible at snapshot 2";
  EXPECT_TRUE(ctx.conflicted());
  EXPECT_FALSE(ctx.Commit());

  // After the next fence publishes epoch 3 the same read succeeds.
  w.Publish(0, 3);
  ctx.Begin();
  ASSERT_TRUE(ctx.Read(0, 0, 2, out.data()));
  EXPECT_EQ(out, ValueAt(2, 3));
  EXPECT_TRUE(ctx.Commit());
}

TEST(SnapshotContext, ReadYourWritesFloorBlocksStaleSnapshots) {
  auto db = MakeDb();
  ReplicationCounters counters(1);
  ReplicationApplier applier(db.get(), &counters);
  ApplyWrite(applier, 0, 1, /*epoch=*/3, 1);  // the session's own write
  AppliedEpochWatermark w(1);
  w.Publish(0, 2);  // replication has not yet applied epoch 3
  Rng rng(1);
  SnapshotContext ctx(db.get(), &w, ReplicaReadMode::kSnapshot, &rng, 0);

  // A session that committed in epoch 3 must not read a snapshot at 2.
  EXPECT_FALSE(ctx.Begin(/*min_epoch=*/3))
      << "watermark 2 cannot serve a session floor of 3";
  EXPECT_TRUE(ctx.conflicted()) << "the floor miss is reported as a conflict";

  // Once the fence publishes the session's epoch, the same Begin succeeds
  // and the session's own write is visible.
  w.Publish(0, 3);
  ASSERT_TRUE(ctx.Begin(/*min_epoch=*/3));
  EXPECT_EQ(ctx.pinned(), 3u);
  std::string out(kValueSize, '\0');
  ASSERT_TRUE(ctx.Read(0, 0, 1, out.data()))
      << "the session reads its own epoch-3 write";
  EXPECT_EQ(out, ValueAt(1, 3));
  EXPECT_TRUE(ctx.Commit());
}

TEST(SnapshotContext, FloorAtOrBelowTheWatermarkIsFree) {
  auto db = MakeDb();
  AppliedEpochWatermark w(1);
  w.Publish(0, 5);
  Rng rng(1);
  SnapshotContext ctx(db.get(), &w, ReplicaReadMode::kSnapshot, &rng, 0);
  EXPECT_TRUE(ctx.Begin(/*min_epoch=*/5)) << "floor == watermark is servable";
  EXPECT_EQ(ctx.pinned(), 5u);
  EXPECT_TRUE(ctx.Begin(/*min_epoch=*/0)) << "no floor always begins";
  EXPECT_TRUE(ctx.Begin(/*min_epoch=*/2)) << "older floor is subsumed";
  EXPECT_FALSE(ctx.conflicted());
}

TEST(SnapshotContext, MonotonicModeCannotHonorAFloor) {
  auto db = MakeDb();
  Rng rng(1);
  // Monotonic mode has no pin (null watermark is legal): any nonzero floor
  // must fail loudly rather than silently serve possibly-stale reads.
  SnapshotContext ctx(db.get(), nullptr, ReplicaReadMode::kMonotonic, &rng, 0);
  EXPECT_TRUE(ctx.Begin(/*min_epoch=*/0));
  EXPECT_FALSE(ctx.Begin(/*min_epoch=*/1));
  EXPECT_TRUE(ctx.conflicted());
}

TEST(SnapshotContext, CommitFailsWhenReplayOvertakesTheReadSet) {
  auto db = MakeDb();
  ReplicationCounters counters(1);
  ReplicationApplier applier(db.get(), &counters);
  ApplyWrite(applier, 0, 1, /*epoch=*/1, 1);
  AppliedEpochWatermark w(1);
  w.Publish(0, 1);
  Rng rng(1);
  SnapshotContext ctx(db.get(), &w, ReplicaReadMode::kSnapshot, &rng, 0);
  ctx.Begin();
  std::string out(kValueSize, '\0');
  ASSERT_TRUE(ctx.Read(0, 0, 1, out.data()));
  // Replay of the next epoch touches the read set before "commit".
  ApplyWrite(applier, 0, 1, /*epoch=*/2, 2);
  EXPECT_FALSE(ctx.Commit()) << "read-set re-check must catch the overwrite";
  // A local retry against the advanced watermark succeeds.
  w.Publish(0, 2);
  ctx.Begin();
  ASSERT_TRUE(ctx.Read(0, 0, 1, out.data()));
  EXPECT_EQ(out, ValueAt(1, 2));
  EXPECT_TRUE(ctx.Commit());
}

TEST(SnapshotContext, DeletedRecordIsAbsentNotAConflict) {
  auto db = MakeDb();
  ReplicationCounters counters(1);
  ReplicationApplier applier(db.get(), &counters);
  ApplyWrite(applier, 0, 1, /*epoch=*/1, 1);
  WriteBuffer buf;
  SerializeDeleteEntry(buf, 0, 0, 1, Tid::Make(1, 2, 0));
  applier.ApplyBatch(0, buf.data());
  AppliedEpochWatermark w(1);
  w.Publish(0, 1);
  Rng rng(1);
  SnapshotContext ctx(db.get(), &w, ReplicaReadMode::kSnapshot, &rng, 0);
  ctx.Begin();
  std::string out(kValueSize, '\0');
  EXPECT_FALSE(ctx.Read(0, 0, 1, out.data()));
  EXPECT_FALSE(ctx.conflicted());
  EXPECT_TRUE(ctx.Commit());
}

TEST(SnapshotContext, MonotonicModeNeedsNoWatermarkAndNeverValidates) {
  auto db = MakeDb();
  ReplicationCounters counters(1);
  ReplicationApplier applier(db.get(), &counters);
  ApplyWrite(applier, 0, 1, /*epoch=*/5, 1);
  Rng rng(1);
  SnapshotContext ctx(db.get(), /*watermark=*/nullptr,
                      ReplicaReadMode::kMonotonic, &rng, 0);
  ctx.Begin();
  std::string out(kValueSize, '\0');
  ASSERT_TRUE(ctx.Read(0, 0, 1, out.data()))
      << "monotonic mode reads the freshest committed version";
  EXPECT_EQ(out, ValueAt(1, 5));
  ApplyWrite(applier, 0, 1, /*epoch=*/6, 2);
  EXPECT_TRUE(ctx.Commit()) << "no snapshot pin, no re-validation";
}

// ---------------------------------------------------------------------------
// Consistency fuzz: snapshot readers vs live replay
// ---------------------------------------------------------------------------
//
// A writer applies *whole epochs* of replicated writes — every key in every
// partition rewritten to a value that embeds the epoch — and publishes the
// watermark only once an epoch is fully applied (for the sharded variant,
// after Drain).  A snapshot at pin W must therefore observe EVERY key at
// exactly epoch W: any mix of epochs inside one committed read-only
// transaction is a torn (partially applied) fence epoch, the bug this path
// exists to rule out.  Monotonic readers check the weaker per-key guarantee:
// embedded epochs never decrease.

struct FuzzStats {
  std::atomic<uint64_t> validated_keys{0};
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> conflicts{0};
  std::atomic<uint64_t> violations{0};
};

uint64_t FuzzKeyQuota() {
  // Per-variant quota of snapshot-validated key reads.  Default totals >= 1M
  // across the two variants; sanitizer/CI runs can shrink it via the env.
  if (const char* s = std::getenv("STAR_REPLICA_FUZZ_KEYS")) {
    return std::strtoull(s, nullptr, 10);
  }
  return 500'000;
}

void SnapshotReader(Database* db, const AppliedEpochWatermark* w,
                    std::atomic<bool>* stop, uint64_t quota, uint64_t seed,
                    FuzzStats* stats) {
  Rng rng(seed);
  SnapshotContext ctx(db, w, ReplicaReadMode::kSnapshot, &rng, 0);
  std::string out(kValueSize, '\0');
  constexpr int kReadsPerTxn = 6;
  uint64_t validated = 0;
  while (validated < quota && !stop->load(std::memory_order_acquire)) {
    ctx.Begin();
    uint64_t seen_epoch = ~0ull;
    bool ok = true;
    for (int i = 0; i < kReadsPerTxn; ++i) {
      int p = static_cast<int>(rng.Uniform(kPartitions));
      uint64_t key = rng.Uniform(kKeys);
      if (!ctx.Read(0, p, key, out.data())) {
        ok = false;  // conflict (or pre-first-epoch absence): retry
        break;
      }
      uint64_t epoch, got_key;
      std::memcpy(&epoch, out.data(), sizeof(epoch));
      std::memcpy(&got_key, out.data() + 8, sizeof(got_key));
      if (got_key != key || out != ValueAt(key, epoch)) {
        ++stats->violations;  // torn value: bytes from two different writes
        ok = false;
        break;
      }
      if (seen_epoch == ~0ull) seen_epoch = epoch;
      if (epoch != seen_epoch) {
        ++stats->violations;  // partially applied fence epoch observed
        ok = false;
        break;
      }
    }
    if (ok && ctx.Commit()) {
      if (seen_epoch != ~0ull && seen_epoch != ctx.pinned()) {
        // The writer rewrites every key each epoch, so a consistent
        // snapshot at pin W holds every key at exactly W.
        ++stats->violations;
      }
      validated += ctx.validated_keys();
      ++stats->committed;
    } else {
      ++stats->conflicts;
    }
  }
  stats->validated_keys += validated;
}

void MonotonicReader(Database* db, std::atomic<bool>* stop,
                     FuzzStats* stats) {
  Rng rng(77);
  SnapshotContext ctx(db, nullptr, ReplicaReadMode::kMonotonic, &rng, 0);
  std::vector<uint64_t> last(kPartitions * kKeys, 0);
  std::string out(kValueSize, '\0');
  while (!stop->load(std::memory_order_acquire)) {
    ctx.Begin();
    int p = static_cast<int>(rng.Uniform(kPartitions));
    uint64_t key = rng.Uniform(kKeys);
    if (!ctx.Read(0, p, key, out.data())) continue;
    uint64_t epoch;
    std::memcpy(&epoch, out.data(), sizeof(epoch));
    uint64_t& prev = last[p * kKeys + key];
    if (epoch < prev) ++stats->violations;  // per-record time ran backwards
    prev = epoch;
  }
}

/// Runs the fuzz against an epoch-apply-then-publish writer.  `apply_epoch`
/// installs every key of every partition at the given epoch and returns only
/// once the writes are fully applied (Drain for the sharded pipeline).
template <typename ApplyEpoch>
void RunConsistencyFuzz(Database* db, AppliedEpochWatermark* w,
                        ApplyEpoch&& apply_epoch) {
  FuzzStats stats;
  std::atomic<bool> stop{false};
  uint64_t quota = FuzzKeyQuota();
  std::vector<std::thread> readers;
  readers.emplace_back(SnapshotReader, db, w, &stop, quota / 2, 101, &stats);
  readers.emplace_back(SnapshotReader, db, w, &stop, quota - quota / 2, 202,
                       &stats);
  readers.emplace_back(MonotonicReader, db, &stop, &stats);

  std::thread writer([&] {
    Rng rng(9);
    uint64_t seq = 0;
    for (uint64_t epoch = 1; !stop.load(std::memory_order_acquire); ++epoch) {
      apply_epoch(epoch, &seq, rng);
      w->Publish(0, epoch);
      // A short idle window between epochs so snapshot attempts regularly
      // land on a quiescent replica and commit (otherwise continuous replay
      // could conflict every attempt on a 1-core host).
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  readers[0].join();
  readers[1].join();
  stop.store(true, std::memory_order_release);
  readers[2].join();
  writer.join();

  EXPECT_EQ(stats.violations.load(), 0u);
  EXPECT_GE(stats.validated_keys.load(), quota);
  EXPECT_GT(stats.committed.load(), 0u);
}

TEST(ReplicaReadFuzz, SerialReplayNeverTearsASnapshot) {
  auto db = MakeDb();
  ReplicationCounters counters(1);
  ReplicationApplier applier(db.get(), &counters);
  AppliedEpochWatermark w(1);
  RunConsistencyFuzz(db.get(), &w,
                     [&](uint64_t epoch, uint64_t* seq, Rng& rng) {
                       // One batch per partition, keys in random order.
                       for (int p = 0; p < kPartitions; ++p) {
                         WriteBuffer buf;
                         uint64_t start = rng.Uniform(kKeys);
                         for (uint64_t i = 0; i < kKeys; ++i) {
                           uint64_t key = (start + i) % kKeys;
                           SerializeValueEntry(buf, 0, p, key,
                                               Tid::Make(epoch, ++*seq, 0),
                                               ValueAt(key, epoch));
                         }
                         applier.ApplyBatch(0, buf.data());
                       }
                     });
}

TEST(ReplicaReadFuzz, ShardedReplayNeverTearsASnapshot) {
  auto db = MakeDb();
  ReplicationCounters counters(1, /*lanes=*/2);
  ShardedApplier::Options so;
  so.shards = 2;
  ShardedApplier sharded(db.get(), &counters, so);
  sharded.Start();
  AppliedEpochWatermark w(1);
  RunConsistencyFuzz(db.get(), &w,
                     [&](uint64_t epoch, uint64_t* seq, Rng& rng) {
                       WriteBuffer buf;
                       uint64_t start = rng.Uniform(kKeys);
                       for (int p = 0; p < kPartitions; ++p) {
                         for (uint64_t i = 0; i < kKeys; ++i) {
                           uint64_t key = (start + i) % kKeys;
                           SerializeValueEntry(buf, 0, p, key,
                                               Tid::Make(epoch, ++*seq, 0),
                                               ValueAt(key, epoch));
                         }
                       }
                       sharded.Submit(0, buf.Release());
                       // The fence's drain round: publication only after the
                       // replay queues are empty.
                       ASSERT_TRUE(sharded.Drain(/*timeout_ms=*/20000));
                     });
  sharded.Stop();
}

// ---------------------------------------------------------------------------
// Scan-heavy snapshot reads: SnapshotWalk under concurrent replay
// ---------------------------------------------------------------------------

/// Per-scan validation state threaded through the plain-function visitor.
struct ScanState {
  uint64_t seen_epoch = ~0ull;  // first row's embedded epoch
  uint64_t prev_key = ~0ull;    // ordered-index keys must strictly ascend
  uint64_t rows = 0;
  uint64_t violations = 0;
};

bool ScanVisit(void* arg, uint64_t key, const void* value) {
  auto* s = static_cast<ScanState*>(arg);
  uint64_t epoch, got_key;
  std::memcpy(&epoch, value, sizeof(epoch));
  std::memcpy(&got_key, static_cast<const char*>(value) + 8, sizeof(got_key));
  std::string v(static_cast<const char*>(value), kValueSize);
  if (got_key != key || v != ValueAt(key, epoch)) {
    ++s->violations;  // torn row: bytes from two different writes
    return false;
  }
  if (s->prev_key != ~0ull && key <= s->prev_key) {
    ++s->violations;  // ordered walk went backwards
    return false;
  }
  if (s->seen_epoch == ~0ull) s->seen_epoch = epoch;
  if (epoch != s->seen_epoch) {
    ++s->violations;  // two epochs inside one snapshot scan: torn fence
    return false;
  }
  s->prev_key = key;
  ++s->rows;
  return true;
}

/// Range scans racing live replication replay that rewrites every key each
/// epoch.  SnapshotWalk must deliver each committed scan entirely at the
/// pinned watermark epoch — ascending, untorn, nothing newer — and a full
/// committed range must be complete (the writer never deletes).
TEST(ReplicaReadFuzz, ScanHeavySnapshotWalkUnderReplay) {
  std::vector<TableSchema> schemas{{"t", kValueSize, 256, /*ordered=*/true}};
  auto db = std::make_unique<Database>(schemas, kPartitions,
                                       std::vector<int>{0, 1}, false);
  ReplicationCounters counters(1);
  ReplicationApplier applier(db.get(), &counters);
  AppliedEpochWatermark w(1);
  std::atomic<uint64_t> violations{0};
  std::atomic<uint64_t> committed_scans{0};
  std::atomic<bool> stop{false};

  auto scan_reader = [&](uint64_t seed, uint64_t quota) {
    Rng rng(seed);
    SnapshotContext ctx(db.get(), &w, ReplicaReadMode::kSnapshot, &rng, 0);
    uint64_t validated = 0;
    while (validated < quota && !stop.load(std::memory_order_acquire)) {
      ctx.Begin();
      int p = static_cast<int>(rng.Uniform(kPartitions));
      uint64_t lo = rng.Uniform(kKeys);
      uint64_t hi = lo + rng.Uniform(kKeys - lo);
      ScanState s;
      bool supported = ctx.Scan(0, p, lo, hi, /*limit=*/0, &ScanVisit, &s);
      if (!supported) {
        ++violations;  // an ordered table must support snapshot scans
        break;
      }
      violations += s.violations;
      if (ctx.Commit()) {
        if (s.rows > 0 && s.seen_epoch != ctx.pinned()) {
          ++violations;  // committed scan not at the pinned snapshot
        }
        if (ctx.pinned() >= 1 && s.violations == 0 &&
            s.rows != hi - lo + 1) {
          ++violations;  // missing rows: the writer covers every key
        }
        validated += ctx.validated_keys();
        ++committed_scans;
      }
    }
  };

  uint64_t quota = FuzzKeyQuota() / 4;
  std::vector<std::thread> readers;
  readers.emplace_back(scan_reader, 303, quota / 2);
  readers.emplace_back(scan_reader, 404, quota - quota / 2);
  std::thread writer([&] {
    Rng rng(11);
    uint64_t seq = 0;
    for (uint64_t epoch = 1; !stop.load(std::memory_order_acquire); ++epoch) {
      for (int p = 0; p < kPartitions; ++p) {
        WriteBuffer buf;
        uint64_t start = rng.Uniform(kKeys);
        for (uint64_t i = 0; i < kKeys; ++i) {
          uint64_t key = (start + i) % kKeys;
          SerializeValueEntry(buf, 0, p, key, Tid::Make(epoch, ++seq, 0),
                              ValueAt(key, epoch));
        }
        applier.ApplyBatch(0, buf.data());
      }
      w.Publish(0, epoch);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  readers[0].join();
  readers[1].join();
  stop.store(true, std::memory_order_release);
  writer.join();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GT(committed_scans.load(), 0u);
}

// ---------------------------------------------------------------------------
// Engine integration
// ---------------------------------------------------------------------------

TEST(ReplicaReads, StarEngineServesSnapshotReadsAlongsideWrites) {
  YcsbOptions yo;
  yo.rows_per_partition = 2000;
  YcsbWorkload wl(yo);
  StarOptions o;
  o.cluster.full_replicas = 1;
  o.cluster.partial_replicas = 3;
  o.cluster.workers_per_node = 2;
  o.iteration_ms = 10;
  o.cross_fraction = 0.1;
  o.replica_read_workers = 1;
  StarEngine engine(o, wl);
  engine.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  engine.ResetStats();
  std::this_thread::sleep_for(std::chrono::milliseconds(800));
  Metrics m = engine.Stop();
  EXPECT_GT(m.committed, 0u) << "the write path must keep committing";
  EXPECT_GT(m.replica_reads, 0u) << "replica readers must serve transactions";
  EXPECT_GT(m.replica_read_keys, 0u);
  // Watermarks must have been published by the fences on every node.
  for (int n = 0; n < o.cluster.nodes(); ++n) {
    ASSERT_NE(engine.watermark(n), nullptr);
    EXPECT_GT(engine.watermark(n)->watermark(), 0u) << "node " << n;
  }
}

TEST(ReplicaReads, StarEngineMonotonicModeAlsoServes) {
  YcsbOptions yo;
  yo.rows_per_partition = 2000;
  YcsbWorkload wl(yo);
  StarOptions o;
  o.cluster.full_replicas = 1;
  o.cluster.partial_replicas = 3;
  o.cluster.workers_per_node = 2;
  o.iteration_ms = 10;
  o.replica_read_workers = 1;
  o.replica_read_mode = ReplicaReadMode::kMonotonic;
  StarEngine engine(o, wl);
  engine.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  Metrics m = engine.Stop();
  EXPECT_GT(m.replica_reads, 0u);
  // Monotonic mode never validates at commit, so conflicts can come only
  // from a bounded optimistic read giving up under contention — rare, but
  // possible when replay rewrites a record mid-read (sanitizer slowdowns
  // widen that window).  They must stay a sliver of the served reads.
  EXPECT_LT(m.replica_read_conflicts, m.replica_reads / 10 + 5)
      << "monotonic mode should conflict only on torn optimistic reads";
}

TEST(ReplicaReads, TpccOrderStatusAndStockLevelRunAtReplicas) {
  TpccOptions topt;
  topt.districts_per_warehouse = 4;
  topt.customers_per_district = 100;
  topt.items = 500;
  TpccWorkload wl(topt);
  StarOptions o;
  o.cluster.full_replicas = 1;
  o.cluster.partial_replicas = 3;
  o.cluster.workers_per_node = 2;
  o.iteration_ms = 10;
  o.replica_read_workers = 1;
  StarEngine engine(o, wl);
  engine.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(1000));
  Metrics m = engine.Stop();
  EXPECT_GT(m.committed, 0u);
  EXPECT_GT(m.replica_reads, 0u);
  EXPECT_GT(wl.generated(TpccWorkload::kClassOrderStatus) +
                wl.generated(TpccWorkload::kClassStockLevel),
            0u);
}

TEST(ReplicaReads, BaselineChassisServesMonotonicReads) {
  YcsbOptions yo;
  yo.rows_per_partition = 2000;
  YcsbWorkload wl(yo);
  BaselineOptions o;
  o.workers_per_node = 2;
  o.replica_read_workers = 1;
  PbOccEngine engine(o, wl);
  engine.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  Metrics m = engine.Stop();
  EXPECT_GT(m.committed, 0u);
  EXPECT_GT(m.replica_reads, 0u);
  // Baseline chassis is monotonic-only: conflicts come only from a bounded
  // optimistic read giving up mid-replay, never from validation.
  EXPECT_LT(m.replica_read_conflicts, m.replica_reads / 10 + 5);
}

}  // namespace
}  // namespace star
