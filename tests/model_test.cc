// The analytical model of Section 6.3 (Figures 3 and 10).

#include "model/model.h"

#include <gtest/gtest.h>

namespace star::model {
namespace {

TEST(Model, SingleNodeIsBaseline) {
  EXPECT_DOUBLE_EQ(Speedup(0.1, 1), 1.0);
  EXPECT_DOUBLE_EQ(ImprovementOverNonPartitioned(0.5, 1), 1.0);
}

TEST(Model, PerfectPartitioningScalesLinearly) {
  // P = 0: STAR behaves like a partitioning-based system, speedup = n.
  EXPECT_DOUBLE_EQ(Speedup(0.0, 4), 4.0);
  EXPECT_DOUBLE_EQ(Speedup(0.0, 16), 16.0);
}

TEST(Model, AllCrossPartitionGivesNoSpeedup) {
  // P = 1: everything runs on the single master.
  EXPECT_DOUBLE_EQ(Speedup(1.0, 8), 1.0);
}

TEST(Model, Figure3KnownPoints) {
  // Figure 3: n = 16, P = 10% -> 16 / (1.6 - 0.1 + 1) = 6.4.
  EXPECT_NEAR(Speedup(0.10, 16), 6.4, 1e-9);
  // P = 1%: 16 / (0.16 - 0.01 + 1) = ~13.9.
  EXPECT_NEAR(Speedup(0.01, 16), 16.0 / 1.15, 1e-9);
}

TEST(Model, Figure10BreakEvenAtKEqualsN) {
  // STAR beats partitioning-based systems iff K > n (Section 6.3).
  double n = 4;
  EXPECT_NEAR(ImprovementOverPartitioning(n, 0.5, n), 1.0, 1e-12);
  EXPECT_GT(ImprovementOverPartitioning(8, 0.5, n), 1.0);
  EXPECT_LT(ImprovementOverPartitioning(2, 0.5, n), 1.0);
}

TEST(Model, ImprovementOverNonPartitionedPositiveWheneverLocalWorkExists) {
  for (double p : {0.0, 0.1, 0.5, 0.9}) {
    EXPECT_GT(ImprovementOverNonPartitioned(p, 4), 1.0) << "P=" << p;
  }
  // P = 1: no single-partition work, no advantage.
  EXPECT_DOUBLE_EQ(ImprovementOverNonPartitioned(1.0, 4), 1.0);
}

TEST(Model, MonotonicInP) {
  for (int i = 1; i < 10; ++i) {
    EXPECT_LT(Speedup(i / 10.0, 8), Speedup((i - 1) / 10.0, 8))
        << "speedup must fall as cross-partition work grows";
  }
}

}  // namespace
}  // namespace star::model
