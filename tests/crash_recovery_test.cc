// Crash-point recovery harness (wal/crash_point.h): a forked child drives
// the durable-epoch group-commit stack — LoggerPool lanes, fsyncing logger
// threads, incremental Checkpointer — through a deterministic keyed
// workload, reporting each *published* durable epoch to the parent over a
// pipe, and dies with _exit(2) at a named durability boundary.  The parent
// then recovers the directory into a fresh database and checks the one
// contract everything else rests on:
//
//   every epoch <= the last durable epoch the child published survives,
//   and the recovered state is *exactly* the deterministic state at the
//   epoch recovery reports — no lost committed writes, no resurrected
//   deleted rows, no half-applied epochs.
//
// Every boundary is exercised at randomized depths (STAR_CRASH_SKIP): the
// default 3 iterations per point keep ctest fast; STAR_CRASH_FUZZ_ITERS
// raises the quota for long fuzz runs.
//
// _exit(2) cannot lose the kernel page cache, so un-fsynced bytes survive
// these crashes; the torn-tail fixtures (wal_torn_tail_test.cc) cover that
// half by corrupting files explicitly.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "common/tid.h"
#include "storage/database.h"
#include "tests/crash_util.h"
#include "wal/logger.h"
#include "wal/wal.h"

namespace star::wal {
namespace {

constexpr int kLanes = 2;
constexpr int kLoggers = 2;
constexpr int kKeysPerLane = 16;
constexpr uint64_t kLaneStride = 100;
constexpr uint64_t kEpochs = 30;
constexpr uint64_t kCkptEvery = 5;  // RunOnce cadence (epochs)

std::unique_ptr<Database> MakeDb() {
  std::vector<TableSchema> schemas{{"t", 8, 1024}};
  return std::make_unique<Database>(schemas, 1, std::vector<int>{0}, false);
}

/// Deterministic value: a function of (lane, key, epoch) only, so the
/// parent can reconstruct the exact expected state at any epoch.
uint64_t ValueFor(int lane, uint64_t key, uint64_t epoch) {
  return (epoch << 40) ^ (key * 0x9E3779B97F4A7C15ull) ^
         (static_cast<uint64_t>(lane) << 8);
}

/// Key 0 of each lane is deleted on even epochs and rewritten on odd ones —
/// the deterministic tombstone churn that makes delta checkpoints and
/// tombstone replay part of every crash.
bool IsDeleteOp(int k, uint64_t epoch) { return k == 0 && epoch % 2 == 0; }

/// The child: per epoch, every lane appends its keys (writes + the
/// deterministic delete) to both the WAL lanes and its own database, marks
/// the epoch, drains the loggers to disk, periodically checkpoints, and
/// reports the published durable epoch.  Dies wherever STAR_CRASH_POINT
/// says.
void ChildWorkload(const std::string& dir, int report_fd) {
  auto db = MakeDb();
  std::atomic<uint64_t> stable{0};
  Checkpointer ckpt(db.get(), dir, 0, &stable);

  LoggerPoolOptions lo;
  lo.dir = dir;
  lo.node = 0;
  lo.num_lanes = kLanes;
  lo.num_loggers = kLoggers;
  lo.fsync = true;
  LoggerPool pool(lo);
  pool.MarkComplete();  // fresh population: a complete recovery basis

  uint64_t seq = 1;
  for (uint64_t e = 1; e <= kEpochs; ++e) {
    for (int lane = 0; lane < kLanes; ++lane) {
      LogLane* l = pool.lane(lane);
      for (int k = 0; k < kKeysPerLane; ++k) {
        uint64_t key = static_cast<uint64_t>(lane) * kLaneStride +
                       static_cast<uint64_t>(k);
        uint64_t tid = Tid::Make(e, seq++, static_cast<uint64_t>(lane));
        HashTable::Row row = db->table(0, 0)->GetOrInsertRow(key);
        if (IsDeleteOp(k, e)) {
          l->AppendDelete(0, 0, key, tid);
          row.rec->ApplyThomasDelete(tid, row.size, row.value,
                                     db->two_version());
        } else {
          uint64_t v = ValueFor(lane, key, e);
          l->Append(0, 0, key, tid,
                    {reinterpret_cast<const char*>(&v), sizeof(v)});
          row.rec->ApplyThomas(tid, &v, row.size, row.value,
                               db->two_version());
        }
      }
    }
    for (int lane = 0; lane < kLanes; ++lane) pool.lane(lane)->MarkEpoch(e);
    pool.Drain();
    if (e % kCkptEvery == 0) {
      stable.store(pool.durable_epoch(), std::memory_order_release);
      ckpt.RunOnce();
    }
    test::ReportDurable(report_fd, pool.durable_epoch());
  }
  pool.Stop();
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/star_crash_test_" + std::to_string(::getpid());
    ResetDir();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void ResetDir() {
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }

  static int Iterations() {
    const char* s = std::getenv("STAR_CRASH_FUZZ_ITERS");
    int n = s != nullptr ? std::atoi(s) : 3;
    return n > 0 ? n : 3;
  }

  /// Recovers the directory and asserts the durability contract against
  /// the child's last published durable epoch.
  void VerifyRecovery(uint64_t reported_durable) {
    auto db = MakeDb();
    RecoveryResult r = Recover(db.get(), dir_, 0);
    ASSERT_GE(r.committed_epoch, reported_durable)
        << "recovery lost epochs the child had published as durable";
    ASSERT_LE(r.committed_epoch, kEpochs);
    uint64_t c = r.committed_epoch;
    if (c == 0) return;  // died before the first epoch became durable

    for (int lane = 0; lane < kLanes; ++lane) {
      for (int k = 0; k < kKeysPerLane; ++k) {
        uint64_t key = static_cast<uint64_t>(lane) * kLaneStride +
                       static_cast<uint64_t>(k);
        HashTable::Row row = db->table(0, 0)->GetRow(key);
        if (IsDeleteOp(k, c)) {
          bool absent = !row.valid();
          if (row.valid()) {
            uint64_t tmp = 0;
            absent = Record::IsAbsent(row.ReadStable(&tmp));
          }
          EXPECT_TRUE(absent)
              << "key " << key << " deleted in epoch " << c << " came back";
        } else {
          ASSERT_TRUE(row.valid()) << "key " << key << " missing at " << c;
          uint64_t out = 0;
          uint64_t w = row.ReadStable(&out);
          EXPECT_FALSE(Record::IsAbsent(w)) << "key " << key;
          EXPECT_EQ(out, ValueFor(lane, key, c))
              << "key " << key << " holds a value from the wrong epoch";
        }
      }
    }
  }

  /// Randomized-depth crash loop for one boundary.  `max_skip` bounds how
  /// many boundary hits the child may survive, so deaths land anywhere
  /// from the first contact to deep into the run (or past it: a skip
  /// beyond the run's hits means the child simply completes — exit 0).
  void RunPoint(const char* point, long max_skip) {
    std::mt19937 rng(0xC0FFEEu ^ static_cast<uint32_t>(std::hash<std::string>{}(point)));
    for (int i = 0; i < Iterations(); ++i) {
      ResetDir();
      long skip = static_cast<long>(rng() % static_cast<uint32_t>(max_skip));
      std::string dir = dir_;
      test::CrashChildResult res = test::RunCrashChild(
          point, skip, [&dir](int fd) { ChildWorkload(dir, fd); });
      ASSERT_TRUE(res.exited) << point << " child died of a signal";
      ASSERT_TRUE(res.exit_code == 0 || res.exit_code == 2)
          << point << " child exited " << res.exit_code;
      VerifyRecovery(res.reported_durable);
      if (res.exit_code == 0) {
        // Survived the whole run: the final report must be the last epoch.
        EXPECT_EQ(res.reported_durable, kEpochs);
      }
    }
  }

  std::string dir_;
};

TEST_F(CrashRecoveryTest, NoCrashControl) {
  std::string dir = dir_;
  test::CrashChildResult res = test::RunCrashChild(
      nullptr, 0, [&dir](int fd) { ChildWorkload(dir, fd); });
  ASSERT_TRUE(res.exited);
  ASSERT_EQ(res.exit_code, 0);
  EXPECT_EQ(res.reported_durable, kEpochs);
  VerifyRecovery(kEpochs);
}

// Batch bytes written, fsync not yet issued.  The page cache survives
// _exit, so recovery may see *more* than the durable promise — never less.
TEST_F(CrashRecoveryTest, PreFsync) {
  RunPoint("pre-fsync", static_cast<long>(kEpochs) * kLoggers);
}

// Epoch marker fsynced but the durable epoch not yet published: the crash
// loses only the announcement; recovery re-derives the epoch from disk.
TEST_F(CrashRecoveryTest, PostFsyncPreEpochPublish) {
  RunPoint("post-fsync-pre-epoch-publish",
           static_cast<long>(kEpochs) * kLoggers);
}

// Checkpoint data file partially written (still a .tmp): recovery must use
// the previous chain, never a torn link.
TEST_F(CrashRecoveryTest, MidCheckpointDelta) {
  RunPoint("mid-checkpoint-delta", static_cast<long>(kEpochs / kCkptEvery));
}

// New checkpoint link durable but the manifest not yet switched: recovery
// lands on the old chain, with the new data file a harmless orphan.
TEST_F(CrashRecoveryTest, MidManifestRename) {
  RunPoint("mid-manifest-rename", static_cast<long>(kEpochs / kCkptEvery));
}

}  // namespace
}  // namespace star::wal
