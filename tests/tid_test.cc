// TID packing and generation (Section 3's three criteria).

#include "common/tid.h"

#include <gtest/gtest.h>

namespace star {
namespace {

TEST(Tid, PackUnpackRoundTrip) {
  uint64_t tid = Tid::Make(123, 456789, 42);
  EXPECT_EQ(Tid::Epoch(tid), 123u);
  EXPECT_EQ(Tid::Sequence(tid), 456789u);
  EXPECT_EQ(Tid::Thread(tid), 42u);
}

TEST(Tid, FitsInMask) {
  uint64_t tid = Tid::Make(Tid::kEpochMask, Tid::kSequenceMask,
                           Tid::kThreadMask);
  EXPECT_EQ(tid & ~Tid::kTidMask, 0u) << "TID must leave the top 2 bits free";
}

TEST(Tid, EpochDominatesOrdering) {
  // Criterion (c): any TID in a later epoch outranks all TIDs of earlier
  // epochs, regardless of sequence/thread.
  uint64_t late = Tid::Make(10, 0, 0);
  uint64_t early = Tid::Make(9, Tid::kSequenceMask, Tid::kThreadMask);
  EXPECT_GT(late, early);
}

TEST(Tid, SequenceBreaksTiesWithinEpoch) {
  EXPECT_GT(Tid::Make(5, 7, 0), Tid::Make(5, 6, 255));
}

TEST(Tid, NextExceedsFloor) {
  uint64_t floor = Tid::Make(3, 100, 7);
  uint64_t next = Tid::Next(floor, 3, 1);
  EXPECT_GT(next, floor);
  EXPECT_EQ(Tid::Epoch(next), 3u);
}

TEST(Tid, NextResetsSequenceOnNewEpoch) {
  uint64_t floor = Tid::Make(3, 100, 7);
  uint64_t next = Tid::Next(floor, 4, 1);
  EXPECT_EQ(Tid::Sequence(next), 0u);
  EXPECT_GT(next, floor);
}

TEST(TidGenerator, MonotonicPerThread) {
  TidGenerator gen(5);
  uint64_t prev = 0;
  for (int i = 0; i < 1000; ++i) {
    uint64_t tid = gen.Generate(/*observed_max=*/0, /*epoch=*/1);
    EXPECT_GT(tid, prev);  // criterion (b)
    EXPECT_EQ(Tid::Thread(tid), 5u);
    prev = tid;
  }
}

TEST(TidGenerator, ExceedsObservedMax) {
  TidGenerator gen(1);
  uint64_t observed = Tid::Make(2, 999, 8);
  uint64_t tid = gen.Generate(observed, /*epoch=*/2);
  EXPECT_GT(tid, observed);  // criterion (a)
}

TEST(TidGenerator, AdoptsCurrentEpoch) {
  TidGenerator gen(1);
  uint64_t tid = gen.Generate(Tid::Make(2, 50, 3), /*epoch=*/7);
  EXPECT_EQ(Tid::Epoch(tid), 7u);  // criterion (c)
}

// Property sweep: interleave two generators on conflicting records and check
// that commit order (by construction: each sees the other's TID as observed
// max) equals TID order.
class TidOrderProperty : public ::testing::TestWithParam<int> {};

TEST_P(TidOrderProperty, ConflictingWritesSerializeByTid) {
  int epoch = GetParam();
  TidGenerator a(1), b(2);
  uint64_t record_tid = 0;
  for (int i = 0; i < 200; ++i) {
    TidGenerator& writer = (i % 3 == 0) ? b : a;
    uint64_t tid = writer.Generate(record_tid, epoch + i / 100);
    EXPECT_GT(tid, record_tid)
        << "a conflicting write must get a strictly larger TID";
    record_tid = tid;
  }
}

INSTANTIATE_TEST_SUITE_P(Epochs, TidOrderProperty,
                         ::testing::Values(1, 5, 100, 4000));

}  // namespace
}  // namespace star
