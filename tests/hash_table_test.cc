// Bucket-locked chaining hash table (Section 3's storage structure).

#include "storage/hash_table.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>

#include "storage/database.h"

namespace star {
namespace {

TEST(HashTable, GetMissingReturnsNull) {
  HashTable ht(8, 16, false);
  EXPECT_EQ(ht.Get(42), nullptr);
}

TEST(HashTable, InsertThenGet) {
  HashTable ht(8, 16, false);
  bool inserted = false;
  HashTable::Row row = ht.GetOrInsertRow(42, &inserted);
  EXPECT_TRUE(inserted);
  EXPECT_FALSE(row.rec->IsPresent()) << "new records start absent";
  uint64_t v = 77;
  row.rec->LockSpin();
  row.rec->Store(Tid::Make(1, 1, 0), &v, 8, row.value, false);
  row.rec->UnlockWithTid(Tid::Make(1, 1, 0));

  HashTable::Row again = ht.GetRow(42);
  ASSERT_TRUE(again.valid());
  uint64_t out = 0;
  again.ReadStable(&out);
  EXPECT_EQ(out, 77u);
}

TEST(HashTable, PointerStabilityAcrossGrowth) {
  HashTable ht(16, 4, false);  // deliberately undersized buckets
  std::vector<Record*> ptrs;
  for (uint64_t k = 0; k < 5000; ++k) {
    ptrs.push_back(ht.GetOrInsert(k));
  }
  for (uint64_t k = 0; k < 5000; ++k) {
    EXPECT_EQ(ht.Get(k), ptrs[k]) << "record pointers must never move";
  }
  EXPECT_EQ(ht.size(), 5000u);
}

TEST(HashTable, ConcurrentInsertNoDuplicatesNoLoss) {
  HashTable ht(8, 1024, false);
  constexpr int kThreads = 4;
  constexpr uint64_t kKeys = 20000;
  std::atomic<uint64_t> created{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (uint64_t k = 0; k < kKeys; ++k) {
        bool inserted = false;
        ht.GetOrInsert(k, &inserted);
        if (inserted) created.fetch_add(1);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(created.load(), kKeys) << "each key created exactly once";
  EXPECT_EQ(ht.size(), kKeys);
}

TEST(HashTable, ForEachVisitsEveryNode) {
  HashTable ht(8, 64, false);
  for (uint64_t k = 100; k < 200; ++k) ht.GetOrInsert(k);
  std::set<uint64_t> seen;
  ht.ForEach([&](uint64_t key, Record*, char*) { seen.insert(key); });
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 100u);
  EXPECT_EQ(*seen.rbegin(), 199u);
}

TEST(Database, PartitionPresenceHonoursPlacement) {
  std::vector<TableSchema> schemas{{"t", 8, 16}};
  Database db(schemas, 4, {1, 3}, false);
  EXPECT_FALSE(db.HasPartition(0));
  EXPECT_TRUE(db.HasPartition(1));
  EXPECT_EQ(db.table(0, 0), nullptr);
  EXPECT_NE(db.table(0, 1), nullptr);
}

TEST(Database, LoadInstallsVisibleRecord) {
  std::vector<TableSchema> schemas{{"t", 8, 16}};
  Database db(schemas, 1, {0}, false);
  uint64_t v = 99;
  db.Load(0, 0, 7, &v);
  HashTable::Row row = db.table(0, 0)->GetRow(7);
  ASSERT_TRUE(row.valid());
  EXPECT_TRUE(row.rec->IsPresent());
  uint64_t out = 0;
  row.ReadStable(&out);
  EXPECT_EQ(out, 99u);
  EXPECT_EQ(row.rec->LoadTid(), Database::kLoadTid);
}

TEST(Database, RevertEpochAcrossTables) {
  std::vector<TableSchema> schemas{{"a", 8, 16}, {"b", 8, 16}};
  Database db(schemas, 1, {0}, /*two_version=*/true);
  uint64_t v0 = 1, v1 = 2;
  db.Load(0, 0, 5, &v0);
  db.Load(1, 0, 5, &v0);
  for (int t = 0; t < 2; ++t) {
    HashTable::Row row = db.table(t, 0)->GetRow(5);
    row.rec->LockSpin();
    row.rec->Store(Tid::Make(9, 1, 0), &v1, 8, row.value, true);
    row.rec->UnlockWithTid(Tid::Make(9, 1, 0));
  }
  db.RevertEpoch(9);
  for (int t = 0; t < 2; ++t) {
    uint64_t out = 0;
    db.table(t, 0)->GetRow(5).ReadStable(&out);
    EXPECT_EQ(out, 1u) << "table " << t;
  }
}

TEST(Database, ResetStorageKeepsPointersValidAndEmpties) {
  std::vector<TableSchema> schemas{{"t", 8, 16}};
  Database db(schemas, 2, {0, 1}, false);
  uint64_t v = 5;
  db.Load(0, 0, 1, &v);
  EXPECT_EQ(db.table(0, 0)->size(), 1u);
  db.ResetStorage();
  EXPECT_TRUE(db.HasPartition(0));
  EXPECT_EQ(db.table(0, 0)->size(), 0u);
}

}  // namespace
}  // namespace star
