// The zero-allocation hot-path machinery: bump arena, arena-backed write
// sets, payload pooling, and the ready-bitmap fabric poll.

#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "cc/silo.h"
#include "cc/write_set.h"
#include "net/endpoint.h"
#include "net/fabric.h"
#include "net/payload_pool.h"
#include "replication/applier.h"
#include "replication/stream.h"

namespace star {
namespace {

TEST(TxnArena, OffsetsSurviveGrowth) {
  TxnArena arena;
  uint32_t a = arena.Alloc(8);
  std::memcpy(arena.ptr(a), "aaaaaaaa", 8);
  // Force many growths; `a` must keep addressing the same bytes.
  for (int i = 0; i < 200; ++i) arena.Alloc(1024);
  EXPECT_EQ(std::string(arena.ptr(a), 8), "aaaaaaaa");
}

TEST(TxnArena, RewindKeepsCapacity) {
  TxnArena arena;
  arena.Alloc(10000);
  size_t cap = arena.capacity();
  arena.Rewind();
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_EQ(arena.capacity(), cap);
  arena.Alloc(10000);
  EXPECT_EQ(arena.capacity(), cap) << "rewound arena must not grow again";
}

TEST(WriteSet, ClearRecyclesWithoutStaleBytes) {
  WriteSet ws;
  WriteSetEntry& a = ws.Add(0, 0, 1);
  ws.AssignValue(a, "XXXXXXXX", 8);
  ws.Clear();
  EXPECT_TRUE(ws.empty());
  // The next transaction's value starts from its own bytes, not txn 1's.
  WriteSetEntry& b = ws.Add(0, 0, 2);
  ws.AssignValue(b, "YY", 2);
  EXPECT_EQ(ws.ValueView(b), "YY");
  EXPECT_EQ(b.value_len, 2u);
  EXPECT_EQ(b.ops_count, 0u);
}

TEST(WriteSet, InterleavedOpsStayContiguousPerEntry) {
  WriteSet ws;
  // Add() invalidates previously returned entry references (vector growth);
  // resolve both through Find() once the entry list is final, as the
  // execution contexts do.  (The original version of this test held the
  // first reference across the second Add — a use-after-free the ci ASan
  // job caught.)
  ws.Add(0, 0, 1);
  ws.Add(0, 0, 2);
  WriteSetEntry& a = *ws.Find(0, 0, 1);
  WriteSetEntry& b = *ws.Find(0, 0, 2);
  ws.AllocValue(a, 16);
  std::memset(ws.ValuePtr(a), 0, 16);
  ws.AllocValue(b, 16);
  std::memset(ws.ValuePtr(b), 0, 16);

  // a, b, a, b: appending to `a` after `b` has ops forces relocation.
  ws.AppendOp(a, Operation::AddI64(0, 1));
  ws.AppendOp(b, Operation::AddI64(0, 10));
  ws.AppendOp(a, Operation::AddI64(8, 2));
  ws.AppendOp(b, Operation::AddI64(8, 20));

  ASSERT_EQ(a.ops_count, 2u);
  ASSERT_EQ(b.ops_count, 2u);
  const Operation* aops = ws.ops(a);
  EXPECT_EQ(aops[0].offset, 0u);
  EXPECT_EQ(aops[1].offset, 8u);
  int64_t delta;
  std::memcpy(&delta, aops[1].operand.data(), 8);
  EXPECT_EQ(delta, 2);
  const Operation* bops = ws.ops(b);
  std::memcpy(&delta, bops[1].operand.data(), 8);
  EXPECT_EQ(delta, 20);
}

std::unique_ptr<Database> MakeDb() {
  std::vector<TableSchema> schemas{{"t", 16, 64}};
  auto db = std::make_unique<Database>(schemas, 1, std::vector<int>{0}, false);
  char zero[16] = {};
  for (uint64_t k = 0; k < 10; ++k) db->Load(0, 0, k, zero);
  return db;
}

TEST(SiloContext, ResetDoesNotLeakValueBytesAcrossTransactions) {
  auto db = MakeDb();
  Rng rng(1);
  TidGenerator gen(0);
  std::atomic<uint64_t> epoch{1};
  SiloContext ctx(db.get(), &rng, 0);

  // Txn 1: write a distinctive pattern to key 1.
  char loud[16];
  std::memset(loud, 'Z', sizeof(loud));
  ctx.Write(0, 0, 1, loud);
  ASSERT_EQ(SiloSerialCommit(ctx, gen, epoch).status, TxnStatus::kCommitted);
  ctx.Reset();

  // Txn 2: ops-only touch of key 2 (value zero in storage).  Its buffered
  // value must be seeded from the record, not from txn 1's arena bytes.
  ctx.ApplyOperation(0, 0, 2, Operation::AddI64(0, 7));
  WriteSet& ws = ctx.write_set();
  ASSERT_EQ(ws.size(), 1u);
  const WriteSetEntry& e = ws.entries()[0];
  int64_t v;
  std::memcpy(&v, ws.ValuePtr(e), 8);
  EXPECT_EQ(v, 7);
  for (uint32_t i = 8; i < e.value_len; ++i) {
    EXPECT_EQ(ws.ValuePtr(e)[i], 0) << "stale byte at " << i;
  }
}

/// Ops-only entries round-trip through operation replication and converge
/// the replica to the primary's record image.
TEST(WriteSet, OpsOnlyEntriesRoundTripThroughReplication) {
  auto primary = MakeDb();
  auto replica = MakeDb();
  net::SimNetOptions fopts;
  fopts.link_latency_us = 0;
  fopts.bandwidth_gbps = 0;
  net::SimTransport fabric(2, fopts);
  net::Endpoint ep(&fabric, 0);
  ReplicationCounters counters(2);
  ReplicationStream stream(&ep, &counters, 2);
  ReplicationApplier applier(replica.get(), &counters);

  Rng rng(3);
  TidGenerator gen(0);
  std::atomic<uint64_t> epoch{1};
  SiloContext ctx(primary.get(), &rng, 0);
  ctx.ApplyOperation(0, 0, 5, Operation::AddI64(0, 11));
  ctx.ApplyOperation(0, 0, 5, Operation::StringPrepend(8, 8, "hi"));
  ASSERT_TRUE(ctx.write_set().entries()[0].ops_only);
  CommitResult cr = SiloSerialCommit(ctx, gen, epoch);
  ASSERT_EQ(cr.status, TxnStatus::kCommitted);
  stream.Append(1, cr.tid, ctx.write_set(), /*allow_operations=*/true);
  stream.FlushAll();

  net::Message m;
  while (!fabric.Poll(1, &m)) CpuRelax();
  EXPECT_EQ(applier.ApplyBatch(m.src, m.payload), 1u);

  HashTable::Row p = primary->table(0, 0)->GetRow(5);
  HashTable::Row r = replica->table(0, 0)->GetRow(5);
  EXPECT_EQ(std::string(p.value, 16), std::string(r.value, 16));
  EXPECT_EQ(r.rec->LoadTid(), cr.tid);
  EXPECT_EQ(counters.sent_to(1), 1u);
  EXPECT_EQ(counters.applied_from(0), 1u);
}

/// Flush thresholds: appends below the threshold buffer locally; crossing it
/// ships exactly one batch, and sent/applied counters agree entry-for-entry.
TEST(ReplicationStream, FlushThresholdAndCountersExactUnderBatching) {
  auto db = MakeDb();
  net::SimNetOptions fopts;
  fopts.link_latency_us = 0;
  fopts.bandwidth_gbps = 0;
  net::SimTransport fabric(2, fopts);
  net::Endpoint ep(&fabric, 0);
  ReplicationCounters counters(2);
  // Threshold fits ~3 value entries (1+4+4+8+8 header + 4+16 value = 45 B).
  ReplicationStream stream(&ep, &counters, 2, /*flush_bytes=*/100);
  ReplicationApplier applier(db.get(), &counters);

  WriteSet ws;
  char v[16] = "abc";
  for (uint64_t k = 0; k < 7; ++k) {
    WriteSetEntry& e = ws.Add(0, 0, k);
    ws.AssignValue(e, v, 16);
  }
  for (const auto& e : ws.entries()) {
    stream.AppendEntry(1, Tid::Make(1, 1, 0), ws, e, false);
  }
  uint64_t auto_flushed = fabric.total_messages();
  EXPECT_GT(auto_flushed, 0u) << "threshold crossings must auto-flush";
  uint64_t sent_before_flushall = counters.sent_to(1);
  EXPECT_LT(sent_before_flushall, 7u) << "tail below threshold stays buffered";
  stream.FlushAll();
  EXPECT_EQ(counters.sent_to(1), 7u);

  uint64_t applied = 0;
  net::Message m;
  while (fabric.Poll(1, &m)) {
    applied += applier.ApplyBatch(m.src, m.payload);
  }
  EXPECT_EQ(applied, 7u);
  EXPECT_EQ(counters.applied_from(0), counters.sent_to(1))
      << "fence accounting must balance";
}

/// Regression: entries dropped by a fail-stopped endpoint must not be
/// counted as sent, or the fence would wait for writes nobody will apply.
TEST(ReplicationStream, FailStopDropsAreNotCountedAsSent) {
  auto db = MakeDb();
  net::SimNetOptions fopts;
  fopts.link_latency_us = 0;
  net::SimTransport fabric(2, fopts);
  net::Endpoint ep(&fabric, 0);
  ReplicationCounters counters(2);
  ReplicationStream stream(&ep, &counters, 2);

  WriteSet ws;
  char v[16] = "x";
  WriteSetEntry& e = ws.Add(0, 0, 3);
  ws.AssignValue(e, v, 16);

  fabric.SetDown(1, true);
  stream.AppendEntry(1, Tid::Make(1, 1, 0), ws, e, false);
  stream.FlushAll();
  EXPECT_EQ(counters.sent_to(1), 0u)
      << "dropped batch must not inflate the sent counter";

  fabric.SetDown(1, false);
  stream.AppendEntry(1, Tid::Make(1, 2, 0), ws, e, false);
  stream.FlushAll();
  EXPECT_EQ(counters.sent_to(1), 1u) << "healthy sends are counted";
}

TEST(PayloadPool, RecyclesBuffers) {
  net::PayloadPool pool;
  std::string s(1024, 'x');
  const char* data = s.data();
  pool.Release(0, std::move(s));
  std::string back = pool.Acquire(0);
  EXPECT_TRUE(back.empty());
  EXPECT_GE(back.capacity(), 1024u);
  EXPECT_EQ(back.data(), data) << "same buffer must come back";
}

TEST(PayloadPool, StealsAcrossShardsAndDropsUseless) {
  net::PayloadPool pool;
  pool.Release(3, std::string(1024, 'y'));
  // Different shard hint still finds the buffer (asymmetric flows).
  EXPECT_GE(pool.Acquire(0).capacity(), 1024u);
  // Tiny buffers are not pooled.
  pool.Release(0, std::string("s"));
  EXPECT_EQ(pool.Acquire(0).capacity(), std::string().capacity());
}

TEST(WriteBuffer, AdoptReusesBackingCapacity) {
  WriteBuffer buf;
  buf.Write<uint64_t>(42);
  std::string payload = buf.Release();
  EXPECT_TRUE(buf.empty());
  std::string recycled(4096, 'r');
  recycled.clear();
  buf.Adopt(std::move(recycled));
  EXPECT_TRUE(buf.empty());
  buf.Write<uint32_t>(7);
  EXPECT_EQ(buf.size(), 4u);
}

/// The ready-bitmap poll must work past one 64-bit word of sources.
TEST(SimTransport, PollScalesPastSixtyFourEndpoints) {
  net::SimNetOptions fopts;
  fopts.link_latency_us = 0;
  fopts.bandwidth_gbps = 0;
  net::SimTransport fabric(70, fopts);
  auto send = [&](int src, const char* body) {
    net::Message m;
    m.src = src;
    m.dst = 1;
    m.type = net::MsgType::kPing;
    m.payload = body;
    EXPECT_TRUE(fabric.Send(std::move(m)));
  };
  send(69, "from-69");
  send(0, "from-0");
  send(33, "from-33");
  EXPECT_TRUE(fabric.HasTraffic(1));
  int got = 0;
  net::Message m;
  bool seen69 = false;
  while (fabric.Poll(1, &m)) {
    ++got;
    if (m.payload == "from-69") seen69 = true;
  }
  EXPECT_EQ(got, 3);
  EXPECT_TRUE(seen69);
  EXPECT_FALSE(fabric.HasTraffic(1));
}

TEST(SimTransport, SendReportsFailStopDrop) {
  net::SimNetOptions fopts;
  net::SimTransport fabric(2, fopts);
  fabric.SetDown(1, true);
  net::Message m;
  m.src = 0;
  m.dst = 1;
  m.type = net::MsgType::kPing;
  EXPECT_FALSE(fabric.Send(std::move(m)));
  net::Message m2;
  m2.src = 0;
  m2.dst = 0;
  m2.type = net::MsgType::kPing;
  EXPECT_TRUE(fabric.Send(std::move(m2)));
}

}  // namespace
}  // namespace star
