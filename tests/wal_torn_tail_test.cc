// Torn-tail fixtures: the half of crash damage _exit(2) cannot produce.
// A real power loss can leave the last WAL batch truncated or scrambled
// (the page cache dies with the machine); these tests corrupt shard WALs
// and checkpoint deltas explicitly and check that recovery stops cleanly
// at the last valid record — per-record CRC framing — and never installs
// garbage or half-trusts a damaged checkpoint chain.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/tid.h"
#include "storage/database.h"
#include "wal/logger.h"
#include "wal/wal.h"

namespace star::wal {
namespace {

std::unique_ptr<Database> MakeDb() {
  std::vector<TableSchema> schemas{{"t", 8, 1024}};
  return std::make_unique<Database>(schemas, 1, std::vector<int>{0}, false);
}

void ApplyWrite(Database* db, uint64_t key, uint64_t tid, uint64_t v) {
  HashTable::Row row = db->table(0, 0)->GetOrInsertRow(key);
  row.rec->ApplyThomas(tid, &v, row.size, row.value, db->two_version());
}

void ApplyDelete(Database* db, uint64_t key, uint64_t tid) {
  HashTable::Row row = db->table(0, 0)->GetOrInsertRow(key);
  row.rec->ApplyThomasDelete(tid, row.size, row.value, db->two_version());
}

uint64_t ReadKey(Database* db, uint64_t key) {
  uint64_t out = 0;
  db->table(0, 0)->GetRow(key).ReadStable(&out);
  return out;
}

size_t FileSize(const std::string& path) {
  std::error_code ec;
  return static_cast<size_t>(std::filesystem::file_size(path, ec));
}

void TruncateTail(const std::string& path, size_t bytes) {
  std::filesystem::resize_file(path, FileSize(path) - bytes);
}

void FlipByte(const std::string& path, size_t offset) {
  FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, static_cast<long>(offset), SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, static_cast<long>(offset), SEEK_SET);
  std::fputc(c ^ 0x5A, f);
  std::fclose(f);
}

class TornTailTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/star_torn_test_" + std::to_string(::getpid());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Writes two epochs through a single-lane logger pool: epoch 1 values
  /// 1000+key, epoch 2 values 2000+key, each sealed by its marker.  The
  /// shard file therefore ends with the epoch-2 marker — the natural
  /// victim for tail damage.
  std::string WriteTwoEpochShard() {
    LoggerPoolOptions lo;
    lo.dir = dir_;
    lo.node = 0;
    LoggerPool pool(lo);
    pool.MarkComplete();
    LogLane* lane = pool.lane(0);
    for (uint64_t e = 1; e <= 2; ++e) {
      for (uint64_t key = 1; key <= 4; ++key) {
        uint64_t v = e * 1000 + key;
        lane->Append(0, 0, key, Tid::Make(e, key, 0),
                     {reinterpret_cast<const char*>(&v), sizeof(v)});
      }
      lane->MarkEpoch(e);
      pool.Drain();
    }
    pool.Stop();
    return LoggerPool::ShardPath(dir_, 0, pool.incarnation(), 0);
  }

  std::string dir_;
};

TEST_F(TornTailTest, TruncatedWalTailStopsAtLastValidRecord) {
  std::string path = WriteTwoEpochShard();
  // Cut into the final entry (the epoch-2 marker): the tail is torn, the
  // records before it are intact.
  TruncateTail(path, 4);

  auto db = MakeDb();
  RecoveryResult r = Recover(db.get(), dir_, 0);
  EXPECT_EQ(r.torn_files, 1u);
  EXPECT_EQ(r.committed_epoch, 1u)
      << "a torn epoch-2 marker must roll the file back to epoch 1";
  for (uint64_t key = 1; key <= 4; ++key) {
    EXPECT_EQ(ReadKey(db.get(), key), 1000 + key)
        << "epoch-2 write leaked past its torn marker";
  }
}

TEST_F(TornTailTest, BitFlippedWalTailIsRejectedByRecordCrc) {
  std::string path = WriteTwoEpochShard();
  FlipByte(path, FileSize(path) - 6);  // inside the epoch-2 marker

  auto db = MakeDb();
  RecoveryResult r = Recover(db.get(), dir_, 0);
  EXPECT_EQ(r.torn_files, 1u);
  EXPECT_EQ(r.committed_epoch, 1u);
  for (uint64_t key = 1; key <= 4; ++key) {
    EXPECT_EQ(ReadKey(db.get(), key), 1000 + key);
  }
}

TEST_F(TornTailTest, MidFileCorruptionNeverInstallsGarbage) {
  std::string path = WriteTwoEpochShard();
  // Scramble a byte in the middle: everything from the first bad record on
  // (including the later markers) is unreadable, so recovery falls to
  // whatever prefix still validates — possibly nothing — but never applies
  // a record whose CRC fails.
  FlipByte(path, FileSize(path) / 2);

  auto db = MakeDb();
  RecoveryResult r = Recover(db.get(), dir_, 0);
  EXPECT_EQ(r.torn_files, 1u);
  EXPECT_LE(r.committed_epoch, 1u);
  for (uint64_t key = 1; key <= 4; ++key) {
    HashTable::Row row = db->table(0, 0)->GetRow(key);
    if (!row.valid()) continue;  // prefix ended before this key: fine
    uint64_t out = 0;
    row.ReadStable(&out);
    EXPECT_TRUE(out == 1000 + key || out == 0)
        << "key " << key << " holds bytes from a corrupt record: " << out;
  }
}

class TornCheckpointTest : public TornTailTest {
 protected:
  /// Builds a base + delta chain alongside a WAL that covers everything:
  /// epoch 1 writes keys 1..4 (base), epoch 2 rewrites key 1 and deletes
  /// key 2 (delta).  Returns the delta link's file path.
  std::string BuildChainWithDelta() {
    auto db = MakeDb();
    std::atomic<uint64_t> stable{0};
    WalWriter w(WalPath(dir_, 0, 0), false);
    for (uint64_t key = 1; key <= 4; ++key) {
      uint64_t tid = Tid::Make(1, key, 0);
      uint64_t v = 1000 + key;
      w.Append(0, 0, key, tid, {reinterpret_cast<const char*>(&v), sizeof(v)});
      ApplyWrite(db.get(), key, tid, v);
    }
    w.MarkEpochAndFlush(1);
    Checkpointer ckpt(db.get(), dir_, 0, &stable);
    stable.store(1);
    EXPECT_EQ(ckpt.RunOnce(), 1u);

    uint64_t v = 2001;
    w.Append(0, 0, 1, Tid::Make(2, 1, 0),
             {reinterpret_cast<const char*>(&v), sizeof(v)});
    ApplyWrite(db.get(), 1, Tid::Make(2, 1, 0), v);
    w.AppendDelete(0, 0, 2, Tid::Make(2, 2, 0));
    ApplyDelete(db.get(), 2, Tid::Make(2, 2, 0));
    w.MarkEpochAndFlush(2);
    stable.store(2);
    EXPECT_EQ(ckpt.RunOnce(), 2u);

    std::vector<CheckpointChainEntry> chain;
    EXPECT_TRUE(LoadCheckpointManifest(CheckpointManifestPath(dir_, 0),
                                       &chain));
    EXPECT_EQ(chain.size(), 2u);
    EXPECT_EQ(chain[1].kind, 1);  // delta link
    return dir_ + "/" + chain[1].file;
  }

  /// The damaged chain must be rejected wholesale; the logs alone still
  /// rebuild the exact state.
  void VerifyFallsBackToLogs() {
    auto db = MakeDb();
    RecoveryResult r = Recover(db.get(), dir_, 0);
    EXPECT_FALSE(r.used_checkpoint)
        << "recovery half-trusted a chain with a damaged link";
    EXPECT_EQ(r.checkpoint_entries, 0u);
    EXPECT_EQ(r.committed_epoch, 2u);
    EXPECT_EQ(ReadKey(db.get(), 1), 2001u);
    HashTable::Row row = db->table(0, 0)->GetRow(2);
    bool absent = !row.valid();
    if (row.valid()) {
      uint64_t tmp = 0;
      absent = Record::IsAbsent(row.ReadStable(&tmp));
    }
    EXPECT_TRUE(absent) << "deleted key resurrected by a corrupt chain";
    EXPECT_EQ(ReadKey(db.get(), 3), 1003u);
    EXPECT_EQ(ReadKey(db.get(), 4), 1004u);
  }
};

TEST_F(TornCheckpointTest, BitFlippedDeltaRejectsWholeChain) {
  std::string delta = BuildChainWithDelta();
  FlipByte(delta, FileSize(delta) / 2);
  VerifyFallsBackToLogs();
}

TEST_F(TornCheckpointTest, TruncatedDeltaRejectsWholeChain) {
  std::string delta = BuildChainWithDelta();
  TruncateTail(delta, 3);
  VerifyFallsBackToLogs();
}

}  // namespace
}  // namespace star::wal
