// OrderedIndex: ordering, range bounds, early termination, deduplication,
// pointer stability, hash-table integration, and scan-under-insert safety —
// the storage-layer guarantees the scan transactions build on.

#include "storage/ordered_index.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "storage/hash_table.h"

namespace star {
namespace {

TEST(OrderedIndex, ScansInAscendingKeyOrderWithinBounds) {
  OrderedIndex idx;
  std::vector<Record> recs(100);
  // Insert in a scrambled order; scans must come back sorted.
  for (int i = 0; i < 100; ++i) {
    int k = (i * 37) % 100;
    idx.Insert(static_cast<uint64_t>(k), &recs[k]);
  }
  std::vector<uint64_t> got;
  idx.Scan(10, 19, [&](uint64_t key, Record* rec) {
    EXPECT_EQ(rec, &recs[key]);
    got.push_back(key);
    return true;
  });
  ASSERT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[i], static_cast<uint64_t>(10 + i));
}

TEST(OrderedIndex, ScanBoundsAreInclusiveAndEmptyRangesAreFine) {
  OrderedIndex idx;
  Record r;
  idx.Insert(5, &r);
  int hits = 0;
  idx.Scan(5, 5, [&](uint64_t, Record*) {
    ++hits;
    return true;
  });
  EXPECT_EQ(hits, 1);
  idx.Scan(6, 100, [&](uint64_t, Record*) {
    ++hits;
    return true;
  });
  EXPECT_EQ(hits, 1);
  idx.Scan(100, 6, [&](uint64_t, Record*) {  // inverted range: no visits
    ++hits;
    return true;
  });
  EXPECT_EQ(hits, 1);
}

TEST(OrderedIndex, CallbackFalseStopsTheScan) {
  OrderedIndex idx;
  std::vector<Record> recs(50);
  for (int i = 0; i < 50; ++i) idx.Insert(i, &recs[i]);
  int visits = 0;
  idx.Scan(0, 49, [&](uint64_t, Record*) {
    ++visits;
    return visits < 7;
  });
  EXPECT_EQ(visits, 7);
}

TEST(OrderedIndex, DuplicateInsertIsIgnored) {
  OrderedIndex idx;
  Record a, b;
  idx.Insert(42, &a);
  idx.Insert(42, &b);
  EXPECT_EQ(idx.size(), 1u);
  idx.Scan(0, 100, [&](uint64_t key, Record* rec) {
    EXPECT_EQ(key, 42u);
    EXPECT_EQ(rec, &a) << "first insert wins";
    return true;
  });
}

TEST(OrderedIndex, HashTableMaintainsItsIndexOnEveryInsertPath) {
  HashTable ht(/*value_size=*/8, /*expected_rows=*/128, /*two_version=*/false,
               /*ordered=*/true);
  ASSERT_NE(ht.index(), nullptr);
  for (uint64_t k = 0; k < 64; ++k) ht.GetOrInsert(k * 3);
  EXPECT_EQ(ht.index()->size(), ht.size());
  // Every indexed record is the same object the hash table returns.
  ht.index()->Scan(0, ~0ull, [&](uint64_t key, Record* rec) {
    EXPECT_EQ(rec, ht.Get(key));
    return true;
  });
  // Unordered tables carry no index (no memory cost for point-only tables).
  HashTable plain(8, 128, false);
  EXPECT_EQ(plain.index(), nullptr);
}

TEST(OrderedIndex, ScansAreSafeAgainstConcurrentInserts) {
  // Smoke test of the latch-free reader contract: scanners run while an
  // inserter grows the index; every scan must see a sorted, duplicate-free
  // prefix-consistent view and never crash or loop.
  OrderedIndex idx;
  std::vector<Record> recs(20000);
  std::atomic<bool> done{false};
  std::thread inserter([&] {
    // Interleave low and high keys so scans race with splices everywhere.
    for (int i = 0; i < 20000; ++i) {
      int k = (i % 2 == 0) ? i : 20000 - i;
      idx.Insert(static_cast<uint64_t>(k), &recs[k]);
    }
    done.store(true);
  });
  auto scan_once = [&] {
    uint64_t prev = 0;
    bool first = true;
    idx.Scan(0, 20000, [&](uint64_t key, Record*) {
      if (!first) EXPECT_GT(key, prev);
      prev = key;
      first = false;
      return true;
    });
  };
  while (!done.load()) scan_once();  // race with the growing index
  inserter.join();
  scan_once();  // quiescent: full, sorted
  EXPECT_EQ(idx.size(), 20000u);
}

}  // namespace
}  // namespace star
