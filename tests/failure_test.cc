// Fault tolerance: failure detection at the fence, epoch revert, the four
// recovery scenarios of Section 4.5.3 (Figure 7), and node rejoin.

#include <gtest/gtest.h>

#include <thread>

#include "core/engine.h"
#include "tests/test_util.h"
#include "workload/ycsb.h"

namespace star {
namespace {

/// Polls `pred` until it holds or `ms` elapses (the 2-core host can delay
/// fence rounds well beyond their nominal timing).
template <typename Pred>
bool WaitUntil(Pred pred, int ms) {
  uint64_t deadline = NowNanos() + MillisToNanos(ms);
  while (NowNanos() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return pred();
}

YcsbOptions SmallYcsb() {
  YcsbOptions o;
  o.rows_per_partition = 1000;
  return o;
}

StarOptions FtStar(int f = 1, int k = 3) {
  StarOptions o;
  o.cluster.full_replicas = f;
  o.cluster.partial_replicas = k;
  o.cluster.workers_per_node = 2;
  o.iteration_ms = 10;
  o.cross_fraction = 0.1;
  o.two_version = true;  // required for epoch revert
  o.fence_timeout_ms = 300;  // fast failure detection for tests
  return o;
}

TEST(Failure, Case1PartialNodeFailureKeepsRunning) {
  YcsbWorkload wl(SmallYcsb());
  StarOptions o = FtStar();
  StarEngine engine(o, wl);
  engine.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));

  engine.InjectFailure(3);  // a partial replica
  EXPECT_TRUE(WaitUntil([&] { return !engine.IsNodeHealthy(3); }, 8000));
  EXPECT_EQ(engine.state(), SystemState::kRunning)
      << "Case 1/3: a full replica and coverage remain";

  engine.ResetStats();
  std::this_thread::sleep_for(std::chrono::milliseconds(800));
  Metrics m = engine.Stop();
  EXPECT_GT(m.committed, 100u)
      << "the system must keep committing after a partial failure";
}

TEST(Failure, Case3MastershipMovesToFullReplica) {
  YcsbWorkload wl(SmallYcsb());
  StarOptions o = FtStar();
  StarEngine engine(o, wl);
  engine.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  engine.InjectFailure(2);
  ASSERT_TRUE(WaitUntil([&] { return !engine.IsNodeHealthy(2); }, 8000));
  ASSERT_EQ(engine.state(), SystemState::kRunning);

  // Partitions previously mastered by node 2 must now commit via node 0
  // (the full replica): total throughput covers all partitions.
  engine.ResetStats();
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  Metrics m = engine.Stop();
  EXPECT_GT(m.committed, 0u);
  // The failed node's partitions are still being written: check that node
  // 0's copy of a partition mastered by node 2 advances.
  Database* full = engine.database(0);
  bool advanced = false;
  for (int p = 2; p < o.cluster.num_partitions(); p += o.cluster.nodes()) {
    HashTable* ht = full->table(0, p);
    std::string scratch(ht->value_size(), '\0');
    ht->ForEach([&](uint64_t, Record* rec, char* value) {
      uint64_t w = rec->ReadStable(scratch.data(), scratch.size(), value);
      if (Record::TidOf(w) > Database::kLoadTid) advanced = true;
    });
  }
  EXPECT_TRUE(advanced) << "re-mastered partitions must keep being updated";
}

TEST(Failure, Case2NoFullReplicaFallsBack) {
  YcsbWorkload wl(SmallYcsb());
  StarOptions o = FtStar(/*f=*/1, /*k=*/3);
  StarEngine engine(o, wl);
  engine.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  engine.InjectFailure(0);  // the only full replica
  EXPECT_TRUE(WaitUntil(
      [&] { return engine.state() == SystemState::kFallbackDistributed; },
      10000));
  EXPECT_EQ(engine.state(), SystemState::kFallbackDistributed)
      << "no full replica left, partial coverage intact (Case 2)";
  engine.Stop();
}

TEST(Failure, Case4TotalLossIsUnavailable) {
  YcsbWorkload wl(SmallYcsb());
  StarOptions o = FtStar(/*f=*/1, /*k=*/2);
  StarEngine engine(o, wl);
  engine.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  engine.InjectFailure(0);
  engine.InjectFailure(1);
  EXPECT_TRUE(WaitUntil(
      [&] { return engine.state() == SystemState::kUnavailable; }, 10000));
  EXPECT_EQ(engine.state(), SystemState::kUnavailable)
      << "neither a full replica nor complete partial coverage remains";
  engine.Stop();
}

TEST(Failure, SecondFullReplicaTakesOverAsMaster) {
  YcsbWorkload wl(SmallYcsb());
  StarOptions o = FtStar(/*f=*/2, /*k=*/2);
  StarEngine engine(o, wl);
  engine.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  EXPECT_EQ(engine.master_node(), 0);
  engine.InjectFailure(0);
  EXPECT_TRUE(WaitUntil([&] { return engine.master_node() == 1; }, 10000));
  EXPECT_EQ(engine.state(), SystemState::kRunning)
      << "f=2 survives the loss of one full replica";
  EXPECT_EQ(engine.master_node(), 1)
      << "the surviving full replica becomes the designated master";
  engine.ResetStats();
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  Metrics m = engine.Stop();
  EXPECT_GT(m.committed, 0u);
}

TEST(Failure, RejoinRestoresReplicaAndConverges) {
  YcsbWorkload wl(SmallYcsb());
  StarOptions o = FtStar();
  StarEngine engine(o, wl);
  engine.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));

  engine.InjectFailure(2);
  ASSERT_TRUE(WaitUntil([&] { return !engine.IsNodeHealthy(2); }, 8000));

  engine.RequestRejoin(2);
  // Recovery runs in parallel with processing (Case 1); give it time to
  // fetch snapshots and resume mastership.
  EXPECT_TRUE(WaitUntil([&] { return engine.IsNodeHealthy(2); }, 15000));
  std::this_thread::sleep_for(std::chrono::milliseconds(1500));

  engine.Stop();
  // After a clean stop the rejoined node's partitions must match the full
  // replica byte for byte.
  Database* full = engine.database(0);
  Database* rejoined = engine.database(2);
  int compared = 0;
  for (int p = 0; p < o.cluster.num_partitions(); ++p) {
    if (!rejoined->HasPartition(p)) continue;
    EXPECT_EQ(testutil::DatabasePartitionChecksum(*rejoined, p),
              testutil::DatabasePartitionChecksum(*full, p))
        << "partition " << p;
    ++compared;
  }
  EXPECT_GT(compared, 0);
}

TEST(Failure, EpochRevertDropsUncommittedWrites) {
  // Unit-level check of the Figure 6 behaviour through the Database API.
  std::vector<TableSchema> schemas{{"t", 8, 64}};
  Database db(schemas, 1, {0}, /*two_version=*/true);
  uint64_t v = 1;
  db.Load(0, 0, 1, &v);
  HashTable::Row row = db.table(0, 0)->GetRow(1);
  // Committed epoch 3 write, then an uncommitted epoch 4 write.
  for (uint64_t e : {3ull, 4ull}) {
    uint64_t nv = e * 100;
    row.rec->LockSpin();
    row.rec->Store(Tid::Make(e, 1, 0), &nv, 8, row.value, true);
    row.rec->UnlockWithTid(Tid::Make(e, 1, 0));
  }
  db.RevertEpoch(4);
  uint64_t out;
  row.ReadStable(&out);
  EXPECT_EQ(out, 300u) << "epoch 4 must vanish, epoch 3 survive";
}

}  // namespace
}  // namespace star
