// Utility substrate: RNG, histogram, serialization, locks, placement.

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/config.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/serializer.h"
#include "common/spinlock.h"

namespace star {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.UniformInclusive(5, 15);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 15u);
  }
}

TEST(Rng, FlipProbability) {
  Rng rng(11);
  int heads = 0;
  for (int i = 0; i < 100000; ++i) heads += rng.Flip(0.1);
  EXPECT_NEAR(heads / 100000.0, 0.1, 0.01);
}

TEST(Rng, NonUniformWithinBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.NonUniform(255, 0, 999);
    EXPECT_LE(v, 999u);
  }
}

TEST(Zipf, SamplesInRangeAndSkewed) {
  Rng rng(5);
  Zipf zipf(1000, 0.9);
  uint64_t low = 0;
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = zipf.Sample(rng);
    ASSERT_LT(v, 1000u);
    if (v < 100) ++low;
  }
  // With theta=0.9 the head is much hotter than uniform (10%).
  EXPECT_GT(low, 20000 * 0.3);
}

TEST(Histogram, QuantilesOfUniformRamp) {
  Histogram h;
  for (uint64_t v = 1; v <= 100000; ++v) h.Record(v);
  EXPECT_NEAR(static_cast<double>(h.p50()), 50000, 50000 * 0.02);
  EXPECT_NEAR(static_cast<double>(h.p99()), 99000, 99000 * 0.02);
  EXPECT_EQ(h.count(), 100000u);
}

TEST(Histogram, P999OfUniformRamp) {
  Histogram h;
  for (uint64_t v = 1; v <= 100000; ++v) h.Record(v);
  EXPECT_NEAR(static_cast<double>(h.p999()), 99900, 99900 * 0.02);
}

TEST(Histogram, EmptyQuantilesAreZero) {
  Histogram h;
  EXPECT_EQ(h.p50(), 0u);
  EXPECT_EQ(h.p99(), 0u);
  EXPECT_EQ(h.p999(), 0u);
  EXPECT_EQ(h.Quantile(1.0), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, SingleSampleIsExactAtEveryQuantile) {
  // A lone sample sits in one bucket; the quantile must report the sample
  // itself, not the bucket's upper bound.
  Histogram h;
  h.Record(777777);
  EXPECT_EQ(h.p50(), 777777u);
  EXPECT_EQ(h.p99(), 777777u);
  EXPECT_EQ(h.p999(), 777777u);
  EXPECT_EQ(h.Quantile(0.0), 777777u);
  EXPECT_EQ(h.Quantile(1.0), 777777u);
}

TEST(Histogram, SingleBucketRepeatedSamplesAreExact) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Record(1000000);
  EXPECT_EQ(h.p50(), 1000000u);
  EXPECT_EQ(h.p999(), 1000000u);
}

TEST(Histogram, SaturatedTopDecadeReportsTrueMax) {
  // Values past the top decade all clamp into the last bucket row; the
  // quantile must fall back to the recorded max, not a fabricated bound.
  Histogram h;
  h.Record(1ull << 45);
  h.Record(1ull << 50);
  h.Record(1ull << 60);
  EXPECT_EQ(h.Quantile(1.0), 1ull << 60);
  EXPECT_EQ(h.p999(), 1ull << 60);
  EXPECT_LE(h.p50(), 1ull << 60);
}

TEST(Histogram, QuantileNeverExceedsMax) {
  Histogram h;
  Rng rng(123);
  for (int i = 0; i < 10000; ++i) h.Record(rng.Uniform(1 << 20) + 1);
  for (double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_LE(h.Quantile(q), h.max());
  }
}

TEST(Histogram, MergeEqualsCombined) {
  Histogram a, b, all;
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) {
    uint64_t v = rng.Uniform(1000000) + 1;
    ((i % 2 == 0) ? a : b).Record(v);
    all.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.p50(), all.p50());
  EXPECT_EQ(a.p99(), all.p99());
}

TEST(Serializer, RoundTrip) {
  WriteBuffer w;
  w.Write<uint32_t>(7);
  w.Write<int64_t>(-55);
  w.WriteString("hello");
  w.Write<uint8_t>(255);
  ReadBuffer r(w.data());
  EXPECT_EQ(r.Read<uint32_t>(), 7u);
  EXPECT_EQ(r.Read<int64_t>(), -55);
  EXPECT_EQ(r.ReadBytes(), "hello");
  EXPECT_EQ(r.Read<uint8_t>(), 255);
  EXPECT_TRUE(r.Done());
}

TEST(Serializer, PatchUpdatesHeader) {
  WriteBuffer w;
  w.Write<uint32_t>(0);  // placeholder count
  w.Write<uint64_t>(1);
  w.Write<uint64_t>(2);
  w.Patch<uint32_t>(0, 2);
  ReadBuffer r(w.data());
  EXPECT_EQ(r.Read<uint32_t>(), 2u);
}

TEST(SpinLock, MutualExclusion) {
  SpinLock mu;
  int counter = 0;
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        SpinLockGuard g(mu);
        ++counter;
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter, 80000);
}

TEST(SpinBarrier, ReusableAcrossRounds) {
  constexpr int kThreads = 4;
  SpinBarrier barrier(kThreads);
  std::atomic<int> phase_counts[3] = {{0}, {0}, {0}};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int round = 0; round < 3; ++round) {
        phase_counts[round].fetch_add(1);
        barrier.Wait();
        // After the barrier, every thread must have bumped this round.
        EXPECT_EQ(phase_counts[round].load(), kThreads);
      }
    });
  }
  for (auto& t : ts) t.join();
}

// --- Placement (Figure 2 invariants) ---

struct PlacementCase {
  int f, k, partitions;
};

class StarPlacementProperty : public ::testing::TestWithParam<PlacementCase> {};

TEST_P(StarPlacementProperty, AsymmetricInvariantsHold) {
  auto [f, k, parts] = GetParam();
  Placement p = Placement::Star(f, k, parts);
  std::set<int> partial_coverage;
  for (int part = 0; part < parts; ++part) {
    // Full replicas store everything.
    for (int fn = 0; fn < f; ++fn) EXPECT_TRUE(p.IsStored(fn, part));
    // Writes reach f+1 copies (Section 3).
    EXPECT_EQ(p.storing(part).size(), static_cast<size_t>(f + 1));
    // The master stores its own partition.
    EXPECT_TRUE(p.IsStored(p.master(part), part));
    for (int s : p.storing(part)) {
      if (s >= f) partial_coverage.insert(part);
    }
  }
  // Partial replicas collectively store at least one full copy.
  EXPECT_EQ(partial_coverage.size(), static_cast<size_t>(parts));
  // Every node masters some portion (partitions >= nodes).
  if (parts >= f + k) {
    for (int n = 0; n < f + k; ++n) {
      EXPECT_FALSE(p.mastered_by(n).empty()) << "node " << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, StarPlacementProperty,
    ::testing::Values(PlacementCase{1, 3, 8}, PlacementCase{1, 3, 48},
                      PlacementCase{2, 6, 16}, PlacementCase{1, 1, 2},
                      PlacementCase{2, 2, 12}, PlacementCase{1, 15, 64}));

TEST(Placement, PrimaryBackupDistinctNodes) {
  Placement p = Placement::PrimaryBackup(4, 8, 2);
  for (int part = 0; part < 8; ++part) {
    ASSERT_EQ(p.storing(part).size(), 2u);
    EXPECT_NE(p.storing(part)[0], p.storing(part)[1])
        << "primary and secondary must land on different nodes";
    EXPECT_EQ(p.master(part), part % 4);
  }
}

TEST(Placement, AllOnPrimaryMastersEverything) {
  Placement p = Placement::AllOnPrimary(2, 8, 2);
  EXPECT_EQ(p.mastered_by(0).size(), 8u);
  EXPECT_TRUE(p.mastered_by(1).empty());
  for (int part = 0; part < 8; ++part) {
    EXPECT_TRUE(p.IsStored(1, part)) << "backup stores every partition";
  }
}

TEST(Placement, ReplicaTargetsExcludeSelf) {
  Placement p = Placement::Star(1, 3, 8);
  for (int part = 0; part < 8; ++part) {
    for (int t : p.ReplicaTargets(p.master(part), part)) {
      EXPECT_NE(t, p.master(part));
    }
  }
}

}  // namespace
}  // namespace star
