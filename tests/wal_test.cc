// WAL, checkpointing, recovery (Section 4.5.1, Case 4 of Section 4.5.3).

#include "wal/wal.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <unistd.h>

namespace star::wal {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/star_wal_test_" + std::to_string(::getpid());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<Database> MakeDb() {
    std::vector<TableSchema> schemas{{"t", 8, 64}};
    return std::make_unique<Database>(schemas, 1, std::vector<int>{0}, false);
  }

  std::string dir_;
};

TEST_F(WalTest, RoundTripThroughRecovery) {
  {
    WalWriter w(WalPath(dir_, 0, 0), false);
    uint64_t v = 111;
    w.Append(0, 0, 1, Tid::Make(1, 1, 0), {reinterpret_cast<char*>(&v), 8});
    v = 222;
    w.Append(0, 0, 2, Tid::Make(1, 2, 0), {reinterpret_cast<char*>(&v), 8});
    w.MarkEpochAndFlush(1);
  }
  auto db = MakeDb();
  RecoveryResult r = Recover(db.get(), dir_, 0);
  EXPECT_EQ(r.committed_epoch, 1u);
  EXPECT_EQ(r.log_entries_replayed, 2u);
  uint64_t out;
  db->table(0, 0)->GetRow(1).ReadStable(&out);
  EXPECT_EQ(out, 111u);
  db->table(0, 0)->GetRow(2).ReadStable(&out);
  EXPECT_EQ(out, 222u);
}

TEST_F(WalTest, UncommittedEpochIsNotReplayed) {
  {
    WalWriter w(WalPath(dir_, 0, 0), false);
    uint64_t v = 1;
    w.Append(0, 0, 1, Tid::Make(1, 1, 0), {reinterpret_cast<char*>(&v), 8});
    w.MarkEpochAndFlush(1);
    v = 99;  // epoch 2 write whose fence never completed
    w.Append(0, 0, 1, Tid::Make(2, 1, 0), {reinterpret_cast<char*>(&v), 8});
    w.Flush();
  }
  auto db = MakeDb();
  RecoveryResult r = Recover(db.get(), dir_, 0);
  EXPECT_EQ(r.committed_epoch, 1u);
  EXPECT_EQ(r.log_entries_skipped, 1u);
  uint64_t out;
  db->table(0, 0)->GetRow(1).ReadStable(&out);
  EXPECT_EQ(out, 1u) << "writes of the torn epoch must be discarded";
}

TEST_F(WalTest, CommittedEpochIsMinAcrossWorkers) {
  // Worker 0 saw the fence for epoch 2; worker 1 crashed before flushing
  // its marker: only epoch 1 is recoverable (Figure 6's revert).
  {
    WalWriter w0(WalPath(dir_, 0, 0), false);
    uint64_t v = 10;
    w0.Append(0, 0, 1, Tid::Make(1, 1, 0), {reinterpret_cast<char*>(&v), 8});
    w0.MarkEpochAndFlush(1);
    v = 20;
    w0.Append(0, 0, 1, Tid::Make(2, 1, 0), {reinterpret_cast<char*>(&v), 8});
    w0.MarkEpochAndFlush(2);
  }
  {
    WalWriter w1(WalPath(dir_, 0, 1), false);
    uint64_t v = 30;
    w1.Append(0, 0, 2, Tid::Make(1, 1, 1), {reinterpret_cast<char*>(&v), 8});
    w1.MarkEpochAndFlush(1);
    v = 40;
    w1.Append(0, 0, 2, Tid::Make(2, 1, 1), {reinterpret_cast<char*>(&v), 8});
    w1.Flush();  // no epoch-2 marker
  }
  auto db = MakeDb();
  RecoveryResult r = Recover(db.get(), dir_, 0);
  EXPECT_EQ(r.committed_epoch, 1u);
  uint64_t out;
  db->table(0, 0)->GetRow(1).ReadStable(&out);
  EXPECT_EQ(out, 10u);
  db->table(0, 0)->GetRow(2).ReadStable(&out);
  EXPECT_EQ(out, 30u);
}

TEST_F(WalTest, CheckpointPlusLogReplay) {
  std::atomic<uint64_t> epoch{1};
  auto db = MakeDb();
  uint64_t v = 7;
  db->Load(0, 0, 5, &v);
  {
    HashTable::Row row = db->table(0, 0)->GetRow(5);
    row.rec->LockSpin();
    uint64_t nv = 8;
    row.rec->Store(Tid::Make(1, 3, 0), &nv, 8, row.value, false);
    row.rec->UnlockWithTid(Tid::Make(1, 3, 0));
  }
  Checkpointer ckpt(db.get(), dir_, 0, &epoch);
  ckpt.RunOnce();

  // A later write goes only to the log.
  {
    WalWriter w(WalPath(dir_, 0, 0), false);
    uint64_t nv = 9;
    w.Append(0, 0, 5, Tid::Make(2, 1, 0), {reinterpret_cast<char*>(&nv), 8});
    w.MarkEpochAndFlush(2);
  }

  auto fresh = MakeDb();
  RecoveryResult r = Recover(fresh.get(), dir_, 0);
  EXPECT_GT(r.checkpoint_entries, 0u);
  uint64_t out;
  fresh->table(0, 0)->GetRow(5).ReadStable(&out);
  EXPECT_EQ(out, 9u) << "log entry must supersede the checkpoint image";
}

TEST_F(WalTest, RecoveryIsIdempotent) {
  {
    WalWriter w(WalPath(dir_, 0, 0), false);
    uint64_t v = 3;
    w.Append(0, 0, 1, Tid::Make(1, 1, 0), {reinterpret_cast<char*>(&v), 8});
    w.MarkEpochAndFlush(1);
  }
  auto db = MakeDb();
  Recover(db.get(), dir_, 0);
  RecoveryResult again = Recover(db.get(), dir_, 0);
  EXPECT_EQ(again.committed_epoch, 1u);
  uint64_t out;
  db->table(0, 0)->GetRow(1).ReadStable(&out);
  EXPECT_EQ(out, 3u);
}

TEST_F(WalTest, EmptyDirectoryRecoversToEpochZero) {
  auto db = MakeDb();
  RecoveryResult r = Recover(db.get(), dir_, 0);
  EXPECT_EQ(r.committed_epoch, 0u);
  EXPECT_EQ(r.log_entries_replayed, 0u);
}

}  // namespace
}  // namespace star::wal
