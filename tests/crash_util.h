#ifndef STAR_TESTS_CRASH_UTIL_H_
#define STAR_TESTS_CRASH_UTIL_H_

// Fork-based crash injection for the durability tests (wal/crash_point.h).
//
// The harness forks a child with STAR_CRASH_POINT / STAR_CRASH_SKIP set;
// the child runs a workload that reports progress (its latest *published*
// durable epoch) over a pipe, and dies with _exit(2) when execution reaches
// the named boundary.  The parent keeps the last fully-received report —
// exactly what a client that was told "epoch E is durable" knew at the
// moment the power went out — and then recovers the directory and checks
// that everything up to that promise survived.
//
// fork() is safe here because gtest's main process is single-threaded when
// the test body runs; the child never returns into gtest (always _exit).

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <string>

namespace star::test {

struct CrashChildResult {
  bool exited = false;        // WIFEXITED (false => signalled, a harness bug)
  int exit_code = -1;         // 2 = crash point fired, 0 = workload completed
  uint64_t reported_durable = 0;  // last durable epoch the child published
  bool reported_any = false;
};

/// Forks a child that runs `workload(report_fd)` under the given crash
/// point.  `skip` survives that many hits of the boundary before dying
/// (STAR_CRASH_SKIP), so randomized iterations crash at varying depths.
/// The workload reports by writing uint64_t durable epochs to report_fd;
/// the parent keeps the last complete one.
inline CrashChildResult RunCrashChild(
    const char* crash_point, long skip,
    const std::function<void(int report_fd)>& workload) {
  int fds[2];
  if (::pipe(fds) != 0) return {};
  pid_t pid = ::fork();
  if (pid == 0) {
    ::close(fds[0]);
    if (crash_point != nullptr) {
      ::setenv("STAR_CRASH_POINT", crash_point, 1);
      ::setenv("STAR_CRASH_SKIP", std::to_string(skip).c_str(), 1);
    } else {
      ::unsetenv("STAR_CRASH_POINT");
    }
    workload(fds[1]);
    ::_exit(0);
  }
  ::close(fds[1]);

  CrashChildResult out;
  uint64_t value = 0;
  size_t have = 0;
  char buf[512];
  for (;;) {
    ssize_t n = ::read(fds[0], buf, sizeof(buf));
    if (n <= 0) break;
    for (ssize_t i = 0; i < n; ++i) {
      reinterpret_cast<char*>(&value)[have++] = buf[i];
      if (have == sizeof(uint64_t)) {
        out.reported_durable = value;
        out.reported_any = true;
        have = 0;
      }
    }
  }
  ::close(fds[0]);

  int status = 0;
  ::waitpid(pid, &status, 0);
  out.exited = WIFEXITED(status);
  out.exit_code = out.exited ? WEXITSTATUS(status) : -1;
  return out;
}

/// Reports one durable epoch observation to the parent.
inline void ReportDurable(int fd, uint64_t durable) {
  ssize_t n = ::write(fd, &durable, sizeof(durable));
  (void)n;
}

}  // namespace star::test

#endif  // STAR_TESTS_CRASH_UTIL_H_
