// The parallel replay pipeline: span splitting, routing, payload recycling,
// backpressure, the prefetched apply loop, and — the load-bearing property —
// randomized convergence: the same batch corpus delivered under shuffled
// cross-source interleavings to a serial ReplicationApplier and to
// ShardedApplier instances of several widths must yield identical
// per-partition checksums (Sections 3 and 5's ordering argument).

#include "replication/sharded_applier.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "replication/log_entry.h"
#include "storage/checksum.h"
#include "tests/test_util.h"

namespace star {
namespace {

constexpr int kPartitions = 8;
constexpr uint32_t kValueSize = 32;

std::unique_ptr<Database> MakeDb() {
  std::vector<TableSchema> schemas{{"t", kValueSize, 256}};
  std::vector<int> parts;
  for (int p = 0; p < kPartitions; ++p) parts.push_back(p);
  return std::make_unique<Database>(schemas, kPartitions, parts, false);
}

std::string ValueFor(uint64_t key, uint64_t tid) {
  std::string v(kValueSize, '\0');
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<char>(HashKey(key * 31 + tid * 7 + i) & 0x7f);
  }
  return v;
}

std::vector<uint64_t> Checksums(Database& db) {
  std::vector<uint64_t> out;
  for (int p = 0; p < kPartitions; ++p) {
    out.push_back(testutil::DatabasePartitionChecksum(db, p));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Span splitting
// ---------------------------------------------------------------------------

TEST(ShardedApplierSplit, SpansCoverEveryEntryExactlyOnceInOrder) {
  WriteBuffer buf;
  Rng rng(7);
  struct Expect {
    int partition;
    uint64_t key;
  };
  std::vector<Expect> entries;
  for (int i = 0; i < 64; ++i) {
    int p = static_cast<int>(rng.Uniform(kPartitions));
    uint64_t key = rng.Uniform(100);
    uint64_t tid = Tid::Make(1, i + 1, 0);
    switch (rng.Uniform(3)) {
      case 0:
        SerializeValueEntry(buf, 0, p, key, tid, ValueFor(key, tid));
        break;
      case 1:
        SerializeDeleteEntry(buf, 0, p, key, tid);
        break;
      default:
        SerializeOperationEntry(buf, 0, p, key, tid,
                                {Operation::AddI64(0, 3)});
        break;
    }
    entries.push_back({p, key});
  }

  for (int shards : {1, 2, 3, 8}) {
    uint64_t total = 0;
    std::vector<Expect> walked;
    for (int s = 0; s < shards; ++s) {
      std::vector<RepSpan> spans;
      total += ShardedApplier::SplitForShard(buf.data(), s, shards, &spans);
      for (const RepSpan& sp : spans) {
        ASSERT_LT(sp.begin, sp.end);
        ReadBuffer in(std::string_view(buf.data()).substr(sp.begin,
                                                          sp.end - sp.begin));
        while (!in.Done()) {
          RepEntryHeader h = RepEntryHeader::Deserialize(in);
          ReplicationApplier::SkipEntryBody(h, in);
          EXPECT_EQ(h.partition % shards, s);
          walked.push_back({h.partition, h.key});
        }
      }
    }
    EXPECT_EQ(total, entries.size());
    // Per shard, the span walk must preserve batch order exactly.
    for (int s = 0; s < shards; ++s) {
      std::vector<uint64_t> want, got;
      for (const auto& e : entries) {
        if (e.partition % shards == s) want.push_back(e.key);
      }
      for (const auto& e : walked) {
        if (e.partition % shards == s) got.push_back(e.key);
      }
      EXPECT_EQ(got, want) << "shard " << s << "/" << shards;
    }
  }
}

// ---------------------------------------------------------------------------
// Pipelined loop == serial loop
// ---------------------------------------------------------------------------

TEST(PipelinedApply, MatchesSerialApplierState) {
  auto serial_db = MakeDb();
  auto pipe_db = MakeDb();
  ReplicationCounters c1(1), c2(1);
  ReplicationApplier serial(serial_db.get(), &c1);
  ReplicationApplier pipelined(pipe_db.get(), &c2);

  Rng rng(11);
  std::vector<uint64_t> seq(kPartitions, 0);
  for (int b = 0; b < 32; ++b) {
    WriteBuffer buf;
    for (int i = 0; i < 50; ++i) {
      int p = static_cast<int>(rng.Uniform(kPartitions));
      uint64_t key = rng.Uniform(64);
      uint64_t tid = Tid::Make(1, ++seq[p], 0);
      switch (rng.Uniform(4)) {
        case 0:
          SerializeDeleteEntry(buf, 0, p, key, tid);
          break;
        case 1:
          SerializeOperationEntry(
              buf, 0, p, key, tid,
              {Operation::AddI64(0, static_cast<int64_t>(key) + 1),
               Operation::StringPrepend(8, 16, "xy")});
          break;
        default:
          SerializeValueEntry(buf, 0, p, key, tid, ValueFor(key, tid));
          break;
      }
    }
    EXPECT_EQ(serial.ApplyBatch(0, buf.data()),
              pipelined.ApplyBatchPipelined(0, buf.data()));
  }
  EXPECT_EQ(Checksums(*serial_db), Checksums(*pipe_db));
  EXPECT_EQ(c1.applied_from(0), c2.applied_from(0));
}

// ---------------------------------------------------------------------------
// Routing, recycling, counters, backpressure
// ---------------------------------------------------------------------------

TEST(ShardedApplier, AppliesRoutedBatchesAndCountsPerLane) {
  auto db = MakeDb();
  ReplicationCounters counters(2, /*lanes=*/4);
  ShardedApplier::Options so;
  so.shards = 4;
  ShardedApplier sharded(db.get(), &counters, so);
  int released = 0;
  sharded.set_release_hook([&](std::string&&) { ++released; });
  sharded.Start();

  uint64_t total = 0;
  for (int b = 0; b < 8; ++b) {
    WriteBuffer buf;
    for (int p = 0; p < kPartitions; ++p) {
      uint64_t tid = Tid::Make(1, b + 1, 0);
      SerializeValueEntry(buf, 0, p, /*key=*/b, tid, ValueFor(b, tid));
      ++total;
    }
    sharded.Submit(/*src=*/1, buf.Release());
  }
  ASSERT_TRUE(sharded.Drain(/*timeout_ms=*/5000));
  EXPECT_EQ(counters.applied_from(1), total);
  EXPECT_EQ(sharded.batches_routed(), 8u);
  sharded.Stop();
  EXPECT_EQ(released, 8) << "one release per consumed batch payload";

  for (int p = 0; p < kPartitions; ++p) {
    HashTable::Row row = db->table(0, p)->GetRow(7);
    ASSERT_TRUE(row.valid());
    EXPECT_TRUE(row.rec->IsPresent());
  }
}

TEST(ShardedApplier, BackpressureWithTinyQueuesLosesNothing) {
  auto db = MakeDb();
  ReplicationCounters counters(1, 2);
  ShardedApplier::Options so;
  so.shards = 2;
  so.queue_capacity = 2;  // force Submit to stall on full rings
  ShardedApplier sharded(db.get(), &counters, so);
  sharded.set_apply_delay_ns_for_test(200'000);  // 0.2 ms per segment
  sharded.Start();
  uint64_t total = 0;
  for (int b = 0; b < 64; ++b) {
    WriteBuffer buf;
    for (int i = 0; i < 4; ++i) {
      int p = static_cast<int>((b + i) % kPartitions);
      uint64_t tid = Tid::Make(1, b * 8 + i + 1, 0);
      SerializeValueEntry(buf, 0, p, i, tid, ValueFor(i, tid));
      ++total;
    }
    sharded.Submit(0, buf.Release());
  }
  sharded.set_apply_delay_ns_for_test(0);
  ASSERT_TRUE(sharded.Drain(/*timeout_ms=*/10000));
  EXPECT_EQ(counters.applied_from(0), total);
  sharded.Stop();
}

TEST(ShardedApplier, DrainTimesOutWhileBackloggedThenCompletes) {
  auto db = MakeDb();
  ReplicationCounters counters(1, 2);
  ShardedApplier::Options so;
  so.shards = 2;
  ShardedApplier sharded(db.get(), &counters, so);
  sharded.set_apply_delay_ns_for_test(50'000'000);  // 50 ms per segment
  sharded.Start();
  for (int b = 0; b < 4; ++b) {
    WriteBuffer buf;
    uint64_t tid = Tid::Make(1, b + 1, 0);
    SerializeValueEntry(buf, 0, b % kPartitions, b, tid, ValueFor(b, tid));
    sharded.Submit(0, buf.Release());
  }
  EXPECT_FALSE(sharded.Drain(/*timeout_ms=*/5));
  sharded.set_apply_delay_ns_for_test(0);
  EXPECT_TRUE(sharded.Drain(/*timeout_ms=*/10000));
  sharded.Stop();
}

// ---------------------------------------------------------------------------
// Randomized convergence fuzz
// ---------------------------------------------------------------------------
//
// Corpus shape mirrors what the phases actually produce:
//  * "op partitions" have a single writer source; their batches mix
//    operation, value, and delete entries with per-partition monotonic TIDs
//    (partitioned phase: single writer + FIFO = commit order).
//  * "thomas partitions" take value/delete entries from every source with
//    arbitrary (globally unique) TIDs (single-master phase: the Thomas rule
//    absorbs any cross-source interleaving).
//  * One early batch per source is re-delivered at the end: its operation
//    entries are stale by then and must be skipped, its value entries are
//    idempotent.
//  * A dedicated tombstone-overtakes-value pair per seed: the delete
//    carries the higher TID and must win in every delivery order.

struct Corpus {
  // per source: FIFO sequence of batch payloads
  std::vector<std::vector<std::string>> by_source;
  uint64_t entries = 0;
};

constexpr int kSources = 3;

Corpus MakeCorpus(uint64_t seed) {
  Corpus c;
  c.by_source.resize(kSources);
  Rng rng(seed);
  std::vector<uint64_t> op_seq(kPartitions, 0);    // op-partition TIDs
  std::vector<uint64_t> src_seq(kSources, 1000);   // thomas TIDs per source

  for (int src = 0; src < kSources; ++src) {
    int batches = 10 + static_cast<int>(rng.Uniform(6));
    for (int b = 0; b < batches; ++b) {
      WriteBuffer buf;
      int n = 8 + static_cast<int>(rng.Uniform(24));
      for (int i = 0; i < n; ++i) {
        bool op_partition = rng.Uniform(2) == 0;
        if (op_partition) {
          // Op partitions 0..3 each have a single writer source
          // (p % kSources); pick one of this source's owned partitions.
          std::vector<int> owned;
          for (int p = 0; p < 4; ++p) {
            if (p % kSources == src) owned.push_back(p);
          }
          if (owned.empty()) continue;
          int p = owned[rng.Uniform(owned.size())];
          uint64_t key = rng.Uniform(32);
          uint64_t tid = Tid::Make(2, ++op_seq[p], src);
          switch (rng.Uniform(4)) {
            case 0:
              SerializeDeleteEntry(buf, 0, p, key, tid);
              break;
            case 1:
              SerializeValueEntry(buf, 0, p, key, tid, ValueFor(key, tid));
              break;
            default:
              SerializeOperationEntry(
                  buf, 0, p, key, tid,
                  {Operation::AddI64(0, static_cast<int64_t>(key + 1)),
                   Operation::StringPrepend(8, 16, "ab")});
              break;
          }
          ++c.entries;
        } else {
          int p = 4 + static_cast<int>(rng.Uniform(4));
          uint64_t key = rng.Uniform(32);
          uint64_t tid = Tid::Make(2, ++src_seq[src], src);
          if (rng.Uniform(5) == 0) {
            SerializeDeleteEntry(buf, 0, p, key, tid);
          } else {
            SerializeValueEntry(buf, 0, p, key, tid, ValueFor(key, tid));
          }
          ++c.entries;
        }
      }
      if (buf.empty()) continue;
      c.by_source[src].push_back(buf.Release());
    }
  }

  // Tombstone overtakes value: the delete (src 1) outranks the value
  // (src 0); whichever arrives first, the key must end absent.
  {
    WriteBuffer v, d;
    SerializeValueEntry(v, 0, 5, /*key=*/999, Tid::Make(2, 5000, 0),
                        ValueFor(999, 1));
    SerializeDeleteEntry(d, 0, 5, /*key=*/999, Tid::Make(2, 5001, 1));
    c.by_source[0].push_back(v.Release());
    c.by_source[1].push_back(d.Release());
    c.entries += 2;
  }

  // Stale replay: re-deliver each source's first batch at its end.
  for (int src = 0; src < kSources; ++src) {
    if (c.by_source[src].empty()) continue;
    std::string replay = c.by_source[src].front();
    ReadBuffer in(replay);
    while (!in.Done()) {
      RepEntryHeader h = RepEntryHeader::Deserialize(in);
      ReplicationApplier::SkipEntryBody(h, in);
      ++c.entries;
    }
    c.by_source[src].push_back(std::move(replay));
  }
  return c;
}

/// One delivery order: (src, batch index) pairs, per-source FIFO preserved.
std::vector<std::pair<int, int>> Interleave(const Corpus& c, uint64_t seed) {
  Rng rng(seed);
  std::vector<int> next(kSources, 0);
  std::vector<std::pair<int, int>> order;
  for (;;) {
    std::vector<int> ready;
    for (int s = 0; s < kSources; ++s) {
      if (next[s] < static_cast<int>(c.by_source[s].size())) ready.push_back(s);
    }
    if (ready.empty()) break;
    int s = ready[rng.Uniform(ready.size())];
    order.emplace_back(s, next[s]++);
  }
  return order;
}

TEST(ShardedApplierFuzz, ConvergesAcrossShardCountsAndInterleavings) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    Corpus corpus = MakeCorpus(seed);

    // Reference: the pre-change serial applier, one interleaving.
    auto ref_db = MakeDb();
    ReplicationCounters ref_counters(kSources);
    ReplicationApplier ref(ref_db.get(), &ref_counters);
    uint64_t ref_applied = 0;
    for (auto [src, b] : Interleave(corpus, seed * 101)) {
      ref_applied += ref.ApplyBatch(src, corpus.by_source[src][b]);
    }
    EXPECT_EQ(ref_applied, corpus.entries);
    std::vector<uint64_t> want = Checksums(*ref_db);

    // Sharded instances, each fed a *different* interleaving.
    for (int shards : {1, 2, 8}) {
      auto db = MakeDb();
      ReplicationCounters counters(kSources, shards);
      ShardedApplier::Options so;
      so.shards = shards;
      ShardedApplier sharded(db.get(), &counters, so);
      sharded.Start();
      for (auto [src, b] : Interleave(corpus, seed * 677 + shards)) {
        std::string payload = corpus.by_source[src][b];  // copy: Submit owns
        sharded.Submit(src, std::move(payload));
      }
      ASSERT_TRUE(sharded.Drain(/*timeout_ms=*/20000));
      sharded.Stop();
      uint64_t applied = 0;
      for (int s = 0; s < kSources; ++s) applied += counters.applied_from(s);
      EXPECT_EQ(applied, corpus.entries) << shards << " shards";
      EXPECT_EQ(Checksums(*db), want)
          << "divergence at " << shards << " shards, seed " << seed;
    }

    // The tombstone-overtakes-value key must have ended absent.
    HashTable::Row row = ref_db->table(0, 5)->GetRow(999);
    ASSERT_TRUE(row.valid());
    EXPECT_FALSE(row.rec->IsPresent());
  }
}

}  // namespace
}  // namespace star
